//! Seed-generated fault scenarios.
//!
//! A [`Scenario`] is a fully materialized event schedule: churn, stream
//! bursts, query storms and NPER rounds, produced up front by a *generation*
//! RNG derived from the seed. Execution consumes a second RNG (seeded from
//! the same seed) strictly in event order, so a schedule truncated at the
//! failing event replays the identical prefix — the property the serialized
//! reproducers rely on.

use dsi_chord::RangeStrategy;
use dsi_simnet::{FaultPlan, FaultSpec};
use dsi_streamgen::WorkloadConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Static shape of a scenario (everything except the seed-driven schedule).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Initial number of data centers.
    pub num_nodes: usize,
    /// Number of registered streams (homed round-robin).
    pub num_streams: usize,
    /// Number of scheduled events after the warm-up feed.
    pub num_events: usize,
    /// Range multicast strategy under test.
    pub strategy: RangeStrategy,
    /// Workload parameters (small Table I variant for test speed).
    pub workload: WorkloadConfig,
    /// Message faults applied to NPER notify ticks.
    pub faults: FaultSpec,
    /// Per-message-class faults applied to *every* overlay send through
    /// the cluster's reliability layer (retry/backoff, failover,
    /// degradation — DESIGN.md §12). `FaultPlan::NONE` leaves the layer
    /// disarmed and the run byte-identical to the historical behavior.
    pub class_faults: FaultPlan,
    /// Disables replica rebalancing on churn — the known-bug injection
    /// switch the oracle self-test flips.
    pub disable_churn_repair: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        // Shrunk for test speed: short windows warm quickly and small
        // batches ship MBRs often, so every oracle sees real state churn.
        let workload = WorkloadConfig {
            window_len: 16,
            num_coeffs: 2,
            mbr_batch: 4,
            mbr_max_width: None,
            bspan_ms: 5_000,
            nper_ms: 1_000,
            ..WorkloadConfig::default()
        };
        ScenarioConfig {
            num_nodes: 10,
            num_streams: 8,
            num_events: 40,
            strategy: RangeStrategy::Sequential,
            workload,
            faults: FaultSpec::NONE,
            class_faults: FaultPlan::NONE,
            disable_churn_repair: false,
        }
    }
}

impl ScenarioConfig {
    /// A variant with lossy/duplicating/delaying NPER delivery.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// A variant arming the cluster's reliability layer with per-class
    /// faults on every overlay send.
    pub fn with_class_faults(mut self, plan: FaultPlan) -> Self {
        self.class_faults = plan;
        self
    }

    /// A variant using bidirectional range multicast.
    pub fn bidirectional(mut self) -> Self {
        self.strategy = RangeStrategy::Bidirectional;
        self
    }
}

/// One scheduled event. All structural choices are baked in at generation
/// time; indices are taken modulo the live population at execution time so
/// a schedule stays valid whatever the interleaved churn did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Advance `steps` stream ticks, feeding every homed stream one value
    /// per tick.
    Feed {
        /// Number of ticks.
        steps: u32,
    },
    /// One stream produces `count` values in a single tick (a burst).
    Burst {
        /// Stream index (modulo the stream count).
        stream: u32,
        /// Values produced.
        count: u32,
    },
    /// Post one similarity query shaped after a stream's current window.
    PostQuery {
        /// Posting client (modulo the live node count).
        client: u32,
        /// Stream whose shape anchors the target (modulo stream count).
        anchor: u32,
        /// Query radius in thousandths.
        radius_milli: u32,
        /// Query life span in ms.
        lifespan_ms: u64,
    },
    /// A burst of queries arriving in one tick.
    QueryStorm {
        /// Number of queries.
        count: u32,
    },
    /// Abrupt failure of one data center.
    CrashNode {
        /// Victim (modulo the live node count); skipped at ≤ 2 nodes.
        victim: u32,
    },
    /// A fresh data center joins the ring.
    JoinNode {
        /// Uniquifier for the new node's label.
        salt: u32,
    },
    /// Re-home every orphaned stream to one live data center.
    RehomeOrphans {
        /// Destination (modulo the live node count).
        to: u32,
    },
    /// One NPER round on every node (with injected message faults),
    /// followed by the global query purge.
    Notify,
}

/// A seed plus its fully materialized schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Seed for the execution RNG (stream values, fault draws).
    pub seed: u64,
    /// Static configuration.
    pub config: ScenarioConfig,
    /// The event schedule.
    pub events: Vec<FaultEvent>,
}

impl Scenario {
    /// Generates the schedule for `seed`. The generation RNG is decoupled
    /// from the execution RNG so truncating the schedule never shifts the
    /// values the remaining events consume.
    pub fn generate(seed: u64, config: ScenarioConfig) -> Scenario {
        config.workload.validate();
        config.faults.validate();
        config.class_faults.validate();
        assert!(config.num_nodes >= 3, "scenarios need at least three data centers");
        assert!(config.num_streams >= 1, "scenarios need at least one stream");
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xFA17));

        let w = &config.workload;
        let mut events = Vec::with_capacity(config.num_events + 3);
        // Warm-up: fill every window and ship the first MBR batches, then
        // settle one NPER round so queries posted early see a live index.
        events.push(FaultEvent::Feed { steps: (w.window_len + 2 * w.mbr_batch) as u32 });
        events.push(FaultEvent::Notify);

        // Generation-side live-node estimate; the harness re-checks at
        // execution time, this only keeps schedules from over-crashing.
        let mut live = config.num_nodes;
        while events.len() < config.num_events + 2 {
            let roll: u32 = rng.gen_range(0..100);
            let ev = match roll {
                0..=24 => FaultEvent::Feed { steps: rng.gen_range(1..=6) },
                25..=39 => FaultEvent::Notify,
                40..=52 => FaultEvent::PostQuery {
                    client: rng.gen(),
                    anchor: rng.gen_range(0..config.num_streams as u32),
                    radius_milli: rng.gen_range(30..250),
                    lifespan_ms: rng.gen_range(4_000..30_000),
                },
                53..=58 => FaultEvent::QueryStorm { count: rng.gen_range(3..9) },
                59..=68 => FaultEvent::Burst {
                    stream: rng.gen_range(0..config.num_streams as u32),
                    count: rng.gen_range(8..40),
                },
                69..=78 if live > 3 => {
                    live -= 1;
                    FaultEvent::CrashNode { victim: rng.gen() }
                }
                79..=86 => {
                    live += 1;
                    FaultEvent::JoinNode { salt: rng.gen() }
                }
                87..=92 => FaultEvent::RehomeOrphans { to: rng.gen() },
                _ => FaultEvent::Notify,
            };
            events.push(ev);
        }
        // Settle: a final NPER round exercises the purge oracle once more.
        events.push(FaultEvent::Notify);
        Scenario { seed, config, events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::generate(7, ScenarioConfig::default());
        let b = Scenario::generate(7, ScenarioConfig::default());
        assert_eq!(a, b);
        let c = Scenario::generate(8, ScenarioConfig::default());
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn schedule_has_expected_length_and_warmup() {
        let s = Scenario::generate(3, ScenarioConfig::default());
        assert_eq!(s.events.len(), s.config.num_events + 3);
        assert!(matches!(s.events[0], FaultEvent::Feed { .. }));
        assert_eq!(s.events[1], FaultEvent::Notify);
        assert_eq!(*s.events.last().unwrap(), FaultEvent::Notify);
    }

    #[test]
    fn schedules_never_overcrash() {
        for seed in 0..50 {
            let s = Scenario::generate(seed, ScenarioConfig::default());
            let mut live = s.config.num_nodes as i64;
            for ev in &s.events {
                match ev {
                    FaultEvent::CrashNode { .. } => live -= 1,
                    FaultEvent::JoinNode { .. } => live += 1,
                    _ => {}
                }
                assert!(live >= 3, "seed {seed} crashes below three nodes");
            }
        }
    }

    #[test]
    fn scenario_roundtrips_through_json() {
        let s = Scenario::generate(11, ScenarioConfig::default().bidirectional());
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn tiny_cluster_config_panics() {
        let cfg = ScenarioConfig { num_nodes: 2, ..ScenarioConfig::default() };
        let _ = Scenario::generate(1, cfg);
    }
}
