//! # dsi-faultsim — deterministic fault injection with invariant oracles
//!
//! A seeded simulation-testing harness for the full middleware stack, in
//! the style of FoundationDB's simulator: a seed fully determines a
//! scenario — node churn, message faults, stream bursts, query storms —
//! which is replayed against a complete [`dsi_core::Cluster`] over
//! simulated time. After every scheduled event the harness audits ten
//! invariants end to end:
//!
//! 1. **No false dismissals** — the distributed index never misses a match
//!    a brute-force reference index finds (the paper's central
//!    lower-bounding guarantee, §III), even across churn and repair.
//! 2. **Routing termination** — every lookup and range multicast from
//!    every live node terminates on a live node over a live path.
//! 3. **Replica placement** — after stabilization, MBR replicas sit on
//!    exactly the covering set of their key range (§IV-G), and queries on
//!    exactly theirs (§IV-E).
//! 4. **Metrics conservation** — message counts reconcile with recorded
//!    hop counts (the bookkeeping behind Figs. 6–8 cannot drift).
//! 5. **Purge** — expired soft state is actually gone after each NPER
//!    round on every node whose cycle ran.
//! 6. **Trace conformance** — the causal message trace (`dsi-trace`) is
//!    well-formed, reconstructs the metrics counters bit for bit, and
//!    every traced multicast covered exactly the brute-force owner set
//!    of its key range.
//! 7. **Eventual completeness** — when per-class message faults are armed
//!    (`ScenarioConfig::class_faults`, hitting *every* overlay send
//!    through the cluster's reliability layer — DESIGN.md §12), coverage
//!    holes left by loss must be erased by retry, failover and periodic
//!    repair within a bounded number of NPER refresh rounds.
//! 8. **Load balance** — under an armed [`LoadBound`], the per-host
//!    max/mean message ratio of every NPER round stays inside the
//!    envelope; with virtual-node re-weighting armed as mitigation
//!    (`ScenarioConfig::mitigation`, DESIGN.md §13) the ratio must drop
//!    back under the bound within the recovery budget after the cluster
//!    splits the hot arc.
//! 9. **Sketch accuracy** — under an armed [`AggregatesConfig`], every
//!    aggregate notification's estimate stays inside its *advertised*
//!    ε-δ contract against a brute-force sliding-window reference scoped
//!    to the notification's own contributor set (DESIGN.md §15), with a
//!    δ-proportional miss budget; the advertised bound must widen —
//!    never tighten — exactly by the uncovered population fraction when
//!    faults or churn keep replicas out of a collection round.
//! 10. **Post-heal convergence** — under an armed [`PartitionConfig`]
//!     the network is severed into islands mid-run (suppressed crossings
//!     are ledgered separately from random loss) and later healed; within
//!     a bounded number of NPER refresh rounds after the heal the ring's
//!     successor/finger state must match a brute-force recomputation,
//!     covering-set placement must be green again, no unexpired
//!     registration may be lost, and a fresh probe query must see full
//!     coverage (DESIGN.md §17). The negative control — the same seed
//!     with stabilization disabled — must trip this oracle.
//!
//! Adversarial workloads are first-class: [`SkewConfig`] injects
//! cross-stream correlation (flash crowds collapsing onto one Fourier
//! arc), Zipf-skewed query popularity, thundering-herd registration
//! bursts and per-tenant admission quotas — all strictly opt-in, so
//! default scenarios stay byte-identical to the historical corpus.
//!
//! On a violation the failing run is serialized as a minimal
//! [`Reproducer`] (seed + truncated schedule + trace summary) to
//! `results/repro-<seed>.json`, and its causal trace is exported as a
//! chrome://tracing timeline to `results/repro-<seed>.trace.json`;
//! replaying it reproduces the identical failure, because the execution
//! RNG is consumed strictly in event order and independently of the
//! schedule generator.
//!
//! Entry points: [`Scenario::generate`] + [`run_scenario`] for bounded
//! runs (wired into `cargo test`), and the `--ignored` soak test for long
//! randomized campaigns.

#![warn(missing_docs)]

pub mod harness;
pub mod oracle;
pub mod repro;
pub mod scenario;

pub use harness::{run_scenario, RunReport, Violation};
pub use oracle::{OracleId, NUM_ORACLES, ORACLES};
pub use repro::{load_reproducer, results_dir, write_reproducer, Reproducer};
pub use scenario::{
    AggregatesConfig, FaultEvent, LoadBound, PartitionConfig, Scenario, ScenarioConfig, SkewConfig,
    POST_HEAL_SETTLE_ROUNDS,
};
