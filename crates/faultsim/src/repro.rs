//! Minimal reproducers, FoundationDB-style.
//!
//! When a run violates an invariant, the harness serializes everything
//! needed to replay the failure — the seed, the scenario config, and the
//! schedule *truncated at the failing event* — to
//! `results/repro-<seed>.json`. Because the execution RNG is consumed
//! strictly in event order and is independent of the generation RNG,
//! replaying the truncated schedule reproduces the identical state
//! trajectory up to and including the violation.

use crate::harness::{run_scenario, Violation};
use crate::scenario::{FaultEvent, Scenario, ScenarioConfig};
use dsi_trace::TraceSummary;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// A serialized failure: replays to the same violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reproducer {
    /// Execution seed of the failing run.
    pub seed: u64,
    /// Scenario configuration of the failing run.
    pub config: ScenarioConfig,
    /// Event schedule truncated at the failing event.
    pub events: Vec<FaultEvent>,
    /// The violation the truncated schedule replays to.
    pub violation: Violation,
    /// Causal-trace digest of the failing run (counts, golden hash,
    /// per-class latency/hop percentiles), when the run was traced. The
    /// full timeline lands beside this file as `repro-<seed>.trace.json`.
    pub trace: Option<TraceSummary>,
}

impl Reproducer {
    /// Builds a reproducer from a failing run: keeps events
    /// `0..=violation.event_index` and discards the rest.
    pub fn from_failure(scenario: &Scenario, violation: Violation) -> Reproducer {
        let cut = (violation.event_index + 1).min(scenario.events.len());
        Reproducer {
            seed: scenario.seed,
            config: scenario.config.clone(),
            events: scenario.events[..cut].to_vec(),
            violation,
            trace: None,
        }
    }

    /// Attaches the failing run's trace summary (builder style).
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSummary) -> Reproducer {
        self.trace = Some(trace);
        self
    }

    /// The truncated schedule as a runnable scenario.
    pub fn scenario(&self) -> Scenario {
        Scenario { seed: self.seed, config: self.config.clone(), events: self.events.clone() }
    }

    /// Replays the truncated schedule; returns the violation it reproduces
    /// (None means the failure did not replay — itself a red flag).
    pub fn replay(&self) -> Option<Violation> {
        run_scenario(&self.scenario()).violation
    }
}

/// The workspace-level `results/` directory reproducers land in.
pub fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("results")
}

/// Serializes a reproducer to `results/repro-<seed>.json` and returns the
/// path. Panics on I/O errors — this runs inside failing tests, where a
/// silent loss of the reproducer is worse than a double panic.
pub fn write_reproducer(repro: &Reproducer) -> PathBuf {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(format!("repro-{}.json", repro.seed));
    let json = serde_json::to_string_pretty(repro).expect("serialize reproducer");
    std::fs::write(&path, json).expect("write reproducer");
    path
}

/// Loads a previously serialized reproducer.
pub fn load_reproducer(path: &Path) -> Reproducer {
    let json = std::fs::read_to_string(path).expect("read reproducer");
    serde_json::from_str(&json).expect("parse reproducer")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_violation(idx: usize) -> Violation {
        Violation {
            oracle: "replica-placement".into(),
            detail: "synthetic".into(),
            event_index: idx,
            time_ms: 1234,
        }
    }

    #[test]
    fn from_failure_truncates_at_the_failing_event() {
        let s = Scenario::generate(21, ScenarioConfig::default());
        let v = fake_violation(5);
        let r = Reproducer::from_failure(&s, v.clone());
        assert_eq!(r.events.len(), 6);
        assert_eq!(r.events[..], s.events[..6]);
        assert_eq!(r.violation, v);
    }

    #[test]
    fn reproducer_roundtrips_through_json() {
        let s = Scenario::generate(22, ScenarioConfig::default());
        let r = Reproducer::from_failure(&s, fake_violation(3));
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: Reproducer = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
