//! Baseline file support: record pre-existing violations so the gate lands
//! green, then burn them down.
//!
//! The format is plain JSON (`results/lint_baseline.json`), read and
//! written by a small hand-rolled parser so the lint crate stays
//! dependency-free:
//!
//! ```json
//! {
//!   "version": 1,
//!   "entries": [
//!     { "rule": "unordered-iter", "file": "crates/core/src/cluster.rs",
//!       "line": 42, "excerpt": "for q in self.queries.values() {",
//!       "introduced": "2026-08-06" }
//!   ]
//! }
//! ```
//!
//! Matching is by `(rule, file, excerpt)` — *not* line — so unrelated edits
//! that shift line numbers don't invalidate the baseline; `line` is kept
//! for human navigation. `introduced` feeds the nightly
//! `--max-baseline-age-days` burn-down check.

use crate::rules::Violation;

/// One baselined violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub rule: String,
    pub file: String,
    pub line: usize,
    pub excerpt: String,
    /// `YYYY-MM-DD` the entry was recorded.
    pub introduced: String,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Whether `v` is covered by a baseline entry.
    pub fn covers(&self, v: &Violation) -> bool {
        self.entries.iter().any(|e| e.rule == v.rule && e.file == v.file && e.excerpt == v.excerpt)
    }

    /// Entries older than `max_age_days` relative to `today` (days since
    /// Unix epoch). Used by the nightly soak burn-down check.
    pub fn stale(&self, today_days: i64, max_age_days: i64) -> Vec<&Entry> {
        self.entries
            .iter()
            .filter(|e| match date_to_days(&e.introduced) {
                Some(d) => today_days - d > max_age_days,
                None => true, // unparsable dates count as stale
            })
            .collect()
    }

    /// Entries that covered no violation this run: their source line no
    /// longer exists (fixed, or drifted past excerpt identity). Dead
    /// entries mask future regressions at the same `(rule, file, excerpt)`,
    /// so `--check` fails until they are pruned with `--write-baseline`.
    pub fn dead(&self, baselined: &[Violation]) -> Vec<&Entry> {
        self.entries
            .iter()
            .filter(|e| {
                !baselined
                    .iter()
                    .any(|v| v.rule == e.rule && v.file == e.file && v.excerpt == e.excerpt)
            })
            .collect()
    }

    /// Parse the baseline JSON. Returns `Err` with a short message on
    /// malformed input (a broken baseline must fail loudly, not pass).
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let v = Json::parse(src)?;
        let obj = v.as_obj().ok_or("baseline root must be an object")?;
        let entries_json = match lookup(obj, "entries") {
            Some(Json::Arr(a)) => a,
            Some(_) => return Err("`entries` must be an array".into()),
            None => return Ok(Baseline::default()),
        };
        let mut entries = Vec::new();
        for e in entries_json {
            let o = e.as_obj().ok_or("baseline entry must be an object")?;
            let s = |k: &str| -> Result<String, String> {
                match lookup(o, k) {
                    Some(Json::Str(s)) => Ok(s.clone()),
                    _ => Err(format!("baseline entry missing string field `{k}`")),
                }
            };
            let line = match lookup(o, "line") {
                Some(Json::Num(n)) => *n as usize,
                _ => 0,
            };
            entries.push(Entry {
                rule: s("rule")?,
                file: s("file")?,
                line,
                excerpt: s("excerpt")?,
                introduced: s("introduced").unwrap_or_default(),
            });
        }
        Ok(Baseline { entries })
    }

    /// Serialize, deterministically ordered by `(file, line, rule)`.
    pub fn emit(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{ \"rule\": {}, \"file\": {}, \"line\": {}, \"excerpt\": {}, \"introduced\": {} }}",
                quote(&e.rule),
                quote(&e.file),
                e.line,
                quote(&e.excerpt),
                quote(&e.introduced),
            ));
        }
        if !entries.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Build a baseline from the current violation list.
pub fn from_violations(vs: &[Violation], today: &str) -> Baseline {
    Baseline {
        entries: vs
            .iter()
            .map(|v| Entry {
                rule: v.rule.to_string(),
                file: v.file.clone(),
                line: v.line,
                excerpt: v.excerpt.clone(),
                introduced: today.to_string(),
            })
            .collect(),
    }
}

/// `YYYY-MM-DD` → days since the Unix epoch (civil-date arithmetic,
/// Howard Hinnant's `days_from_civil`).
pub fn date_to_days(date: &str) -> Option<i64> {
    let mut parts = date.split('-');
    let y: i64 = parts.next()?.parse().ok()?;
    let m: i64 = parts.next()?.parse().ok()?;
    let d: i64 = parts.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    let y = y - i64::from(m <= 2);
    let era = y.div_euclid(400);
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Some(era * 146097 + doe - 719468)
}

/// Days since the Unix epoch → `YYYY-MM-DD` (inverse of [`date_to_days`]).
pub fn days_to_date(days: i64) -> String {
    let z = days + 719468;
    let era = z.div_euclid(146097);
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = y + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ----------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (objects, arrays,
// strings, numbers, booleans, null) — just enough for the baseline file.
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    pub fn parse(src: &str) -> Result<Json, String> {
        let chars: Vec<char> = src.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing garbage at offset {}", p.pos));
        }
        Ok(v)
    }
}

fn lookup<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.chars.get(self.pos).is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected character at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        for w in word.chars() {
            if self.peek() != Some(w) {
                return Err(format!("bad literal at offset {}", self.pos));
            }
            self.pos += 1;
        }
        Ok(v)
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(':')?;
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.skip_ws();
        if self.peek() != Some('"') {
            return Err(format!("expected string at offset {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut cp = 0u32;
                            for _ in 0..4 {
                                let Some(h) = self.peek().and_then(|c| c.to_digit(16)) else {
                                    return Err("bad \\u escape".into());
                                };
                                cp = cp * 16 + h;
                                self.pos += 1;
                            }
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape `\\{e}`")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| {
            c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-'
        }) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Violation, D01};

    fn v(rule: &'static str, file: &str, line: usize, excerpt: &str) -> Violation {
        Violation {
            rule,
            file: file.to_string(),
            line,
            message: String::new(),
            excerpt: excerpt.to_string(),
        }
    }

    #[test]
    fn roundtrip_and_line_drift_tolerance() {
        let b = from_violations(
            &[v(D01, "crates/core/src/cluster.rs", 42, "for q in self.queries.values() {")],
            "2026-08-06",
        );
        let text = b.emit();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.entries, b.entries);
        // Same (rule, file, excerpt) at a shifted line is still covered.
        let shifted = v(D01, "crates/core/src/cluster.rs", 99, "for q in self.queries.values() {");
        assert!(parsed.covers(&shifted));
        let other = v(D01, "crates/core/src/cluster.rs", 42, "different excerpt");
        assert!(!parsed.covers(&other));
    }

    #[test]
    fn empty_baseline_parses_and_covers_nothing() {
        let b = Baseline::parse("{\n  \"version\": 1,\n  \"entries\": []\n}\n").unwrap();
        assert!(b.entries.is_empty());
        assert!(!b.covers(&v(D01, "x.rs", 1, "y")));
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(Baseline::parse("{ not json").is_err());
        assert!(Baseline::parse("{\"entries\": 3}").is_err());
    }

    #[test]
    fn stale_entries_by_date() {
        let mut b = from_violations(&[v(D01, "a.rs", 1, "x")], "2026-01-01");
        b.entries.push(Entry {
            rule: D01.into(),
            file: "b.rs".into(),
            line: 2,
            excerpt: "y".into(),
            introduced: "2026-08-01".into(),
        });
        let today = date_to_days("2026-08-06").unwrap();
        let stale = b.stale(today, 14);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, "a.rs");
    }

    #[test]
    fn dead_entries_are_the_uncovered_ones() {
        let mut b = from_violations(&[v(D01, "a.rs", 1, "x")], "2026-08-06");
        b.entries.push(Entry {
            rule: D01.into(),
            file: "gone.rs".into(),
            line: 7,
            excerpt: "deleted long ago".into(),
            introduced: "2026-07-01".into(),
        });
        // This run only re-confirmed the a.rs violation.
        let dead = b.dead(&[v(D01, "a.rs", 5, "x")]);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].file, "gone.rs");
        // A fully covered baseline has no dead entries.
        assert!(b
            .dead(&[v(D01, "a.rs", 5, "x"), v(D01, "gone.rs", 7, "deleted long ago")])
            .is_empty());
    }

    #[test]
    fn civil_date_roundtrip() {
        for d in ["1970-01-01", "2000-02-29", "2026-08-06", "2038-01-19"] {
            let days = date_to_days(d).unwrap();
            assert_eq!(days_to_date(days), d, "roundtrip {d}");
        }
        assert_eq!(date_to_days("1970-01-01"), Some(0));
    }

    #[test]
    fn json_escapes_roundtrip() {
        let b = from_violations(&[v(D01, "a.rs", 1, "say \"hi\"\tand \\ back")], "2026-08-06");
        let parsed = Baseline::parse(&b.emit()).unwrap();
        assert_eq!(parsed.entries[0].excerpt, "say \"hi\"\tand \\ back");
    }
}
