//! The eight determinism / invariant rules.
//!
//! Every rule is a pure function from a [`SourceFile`] (plus the shared
//! [`Context`]) to violations. Rules are deliberately *textual* — this is a
//! tidy-style gate, not a type checker — so each one documents its
//! heuristics and every rule honors `// dsilint: allow(<rule>, <reason>)`
//! markers (applied later by the engine, so fixtures can test raw hits).
//! The v2 rules (A01, S01) additionally consult the workspace call graph
//! built in pass 1 (see [`crate::callgraph`]).

use crate::callgraph::Graph;
use crate::source::SourceFile;

/// Slugs, used in allow markers and baseline entries.
pub const A01: &str = "hot-path-alloc";
pub const D01: &str = "unordered-iter";
pub const D02: &str = "wall-clock-and-entropy";
pub const D03: &str = "metrics-trace-pairing";
pub const R01: &str = "hot-path-unwrap";
pub const S01: &str = "charge-once-at-send";
pub const X01: &str = "class-table";
pub const X02: &str = "oracle-table-sync";

/// All rule slugs, in report order (sorted by rule id).
pub const ALL_RULES: [&str; 8] = [A01, D01, D02, D03, R01, S01, X01, X02];

/// `(rule id, slug)` pairs in report order.
pub const RULE_IDS: [(&str, &str); 8] = [
    ("A01", A01),
    ("D01", D01),
    ("D02", D02),
    ("D03", D03),
    ("R01", R01),
    ("S01", S01),
    ("X01", X01),
    ("X02", X02),
];

/// One rule hit (before allow-marker / baseline filtering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule slug.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// Trimmed raw source of the offending line (baseline identity).
    pub excerpt: String,
}

/// One function in the A01 hot set: reachable from a zero-alloc entry
/// point, with the witness call chain that got it there.
#[derive(Debug, Clone)]
pub struct HotFn {
    /// Defining file (workspace-relative).
    pub file: String,
    /// `Type::name` label for messages.
    pub label: String,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 1-based line of the body's closing `}`.
    pub body_end: usize,
    /// Witness chain from an entry point (`a::b → c::d → …`).
    pub via: String,
}

/// Workspace-level facts shared by rules: the `MsgClass` and `OracleId`
/// tables, the call graph, and the A01 hot set.
#[derive(Debug, Clone, Default)]
pub struct Context {
    /// Variant names of `pub enum MsgClass`, in declaration order.
    pub msg_class_variants: Vec<String>,
    /// File the enum was found in.
    pub msg_class_file: Option<String>,
    /// Variant names of `pub enum OracleId`, in declaration order.
    pub oracle_variants: Vec<String>,
    /// File the oracle enum was found in.
    pub oracle_file: Option<String>,
    /// Oracle count advertised by DESIGN.md's machine-readable marker
    /// (`<!-- dsilint: oracle-count = N -->`), when the engine found one.
    pub design_oracle_count: Option<usize>,
    /// Workspace call graph over the runtime crates.
    pub graph: Graph,
    /// Functions reachable from the zero-alloc entry points, cold
    /// boundaries already excluded.
    pub hot_fns: Vec<HotFn>,
}

/// A01 reachability roots: the zero-alloc contract's entry points
/// (DESIGN.md §14) — the per-value ingest call, the batch wrappers, and
/// the inline aggregate replica update.
const A01_ENTRIES: [(&str, &str); 4] = [
    ("Cluster", "post_value"),
    ("Cluster", "ingest_batch"),
    ("Cluster", "ingest_batch_into"),
    ("Cluster", "update_aggregates"),
];

impl Context {
    /// Pass 1: scan `files` for the enum tables and build the call graph
    /// plus the A01 hot set.
    pub fn build(files: &[SourceFile]) -> Context {
        let mut ctx = Context::default();
        for f in files {
            if ctx.msg_class_file.is_none() {
                if let Some(vars) = parse_enum_variants(f, "MsgClass") {
                    ctx.msg_class_variants = vars;
                    ctx.msg_class_file = Some(f.path.clone());
                }
            }
            if ctx.oracle_file.is_none() {
                if let Some(vars) = parse_enum_variants(f, "OracleId") {
                    ctx.oracle_variants = vars;
                    ctx.oracle_file = Some(f.path.clone());
                }
            }
        }
        ctx.graph = Graph::build(files);
        // A function-level allow(A01) marker on the `fn` line is a cold
        // boundary: not scanned, not traversed through.
        let cold = |fd: &crate::callgraph::FnDef| {
            files
                .iter()
                .find(|f| f.path == fd.file)
                .is_some_and(|f| f.allow_reason(A01, fd.sig_line).is_some())
        };
        ctx.hot_fns = ctx
            .graph
            .reachable(&A01_ENTRIES, &cold)
            .into_iter()
            .map(|r| {
                let fd = &ctx.graph.fns[r.fn_idx];
                HotFn {
                    file: fd.file.clone(),
                    label: fd.label(),
                    sig_line: fd.sig_line,
                    body_end: fd.body_end,
                    via: r.via,
                }
            })
            .collect();
        ctx
    }
}

/// Run every rule on one file.
pub fn run_all(ctx: &Context, f: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    out.extend(hot_path_alloc(ctx, f));
    out.extend(unordered_iter(f));
    out.extend(wall_clock_and_entropy(f));
    out.extend(metrics_trace_pairing(f));
    out.extend(hot_path_unwrap(f));
    out.extend(charge_once_at_send(ctx, f));
    out.extend(class_table(ctx, f));
    out.extend(oracle_table_sync(ctx, f));
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// The identifier ending at byte offset `end` (exclusive) of `line`, if any.
fn ident_ending_at(line: &str, end: usize) -> Option<&str> {
    let bytes = line.as_bytes();
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1] as char) {
        start -= 1;
    }
    (start < end).then(|| &line[start..end])
}

/// Walk back from the `.` of a method call to the *base identifier* of the
/// receiver: skips one trailing `[…]` index, refuses call results `(…)`
/// (unknown type). `self.queries.iter()` → `queries`;
/// `self.membership[0].keys()` → `membership`; `foo().iter()` → `None`.
fn receiver_base(line: &str, dot: usize) -> Option<&str> {
    let bytes = line.as_bytes();
    let mut i = dot;
    if i > 0 && bytes[i - 1] == b']' {
        // Skip the balanced […] suffix.
        let mut depth = 0i32;
        while i > 0 {
            i -= 1;
            match bytes[i] {
                b']' => depth += 1,
                b'[' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    if i > 0 && bytes[i - 1] == b')' {
        return None; // method-call result: receiver type unknown
    }
    ident_ending_at(line, i)
}

// ----------------------------------------------------------------------
// A01 — hot-path-alloc
// ----------------------------------------------------------------------

/// Allocating constructs forbidden in the hot set. Tokens that start with
/// an identifier character are matched at word boundaries.
const A01_TOKENS: [&str; 9] = [
    "Vec::new(",
    "vec![",
    "with_capacity(",
    ".collect",
    ".clone()",
    ".to_vec()",
    ".to_string()",
    "format!(",
    "Box::new(",
];

/// **A01** — allocating constructs in any function reachable from the
/// zero-alloc entry points (`Cluster::post_value`, `Cluster::ingest_batch`
/// and friends, `Cluster::update_aggregates`): the static mirror of
/// `core/tests/zero_alloc.rs`, which would have caught the derived-`Clone`
/// `ExpHistogram` capacity bug before the counting allocator did.
/// Reachability is nominal and over-approximate ([`crate::callgraph`]);
/// setup/cold branches escape with a statement-level
/// `// dsilint: allow(hot-path-alloc, <reason>)`, and a whole function is
/// excluded (a *cold boundary*) when the marker sits on its `fn` line.
pub fn hot_path_alloc(ctx: &Context, f: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut seen: Vec<(usize, usize)> = Vec::new(); // (line idx, token offset)
    for h in ctx.hot_fns.iter().filter(|h| h.file == f.path) {
        for idx in (h.sig_line - 1)..h.body_end.min(f.code.len()) {
            let line = &f.code[idx];
            for t in A01_TOKENS {
                let mut from = 0usize;
                while let Some(p) = line[from..].find(t) {
                    let pos = from + p;
                    from = pos + t.len();
                    let bounded = !t.starts_with(is_ident_char)
                        || pos == 0
                        || !is_ident_char(line.as_bytes()[pos - 1] as char);
                    if !bounded || seen.contains(&(idx, pos)) {
                        continue;
                    }
                    seen.push((idx, pos));
                    out.push(Violation {
                        rule: A01,
                        file: f.path.clone(),
                        line: idx + 1,
                        message: format!(
                            "allocating `{}` in `{}` (hot via {}); the zero-alloc ingest \
                             contract (DESIGN §14) forbids steady-state allocation — reuse a \
                             scratch buffer, hoist to setup, or justify with \
                             `// dsilint: allow({A01}, <reason>)` (on the `fn` line to mark a \
                             cold boundary)",
                            t.trim_end_matches(['(', '[']),
                            h.label,
                            h.via
                        ),
                        excerpt: f.raw.get(idx).map(|l| l.trim().to_string()).unwrap_or_default(),
                    });
                }
            }
        }
    }
    out
}

// ----------------------------------------------------------------------
// D01 — unordered-iter
// ----------------------------------------------------------------------

/// Crates whose routed / emitted state must not depend on hash order.
const D01_CRATES: [&str; 5] =
    ["crates/core/", "crates/chord/", "crates/simnet/", "crates/hierarchy/", "crates/trace/"];

/// Iteration methods whose order is the hasher's.
const ITER_METHODS: [&str; 8] = [
    ".keys()",
    ".values()",
    ".values_mut()",
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// **D01** — iteration over a `HashMap` / `HashSet` in the deterministic
/// crates, unless the surrounding statement window sorts the result (or
/// collects into a `BTree*`).
///
/// Receivers are recognized *nominally*: the file is scanned for names
/// declared with a type mentioning `HashMap`/`HashSet` (struct fields,
/// `let` bindings, parameters) or initialized from `HashMap::…` /
/// `HashSet::…`, and iteration calls / `for … in` loops over those names
/// are flagged. Closure-bound aliases of map contents are not tracked —
/// the self-test and reviewers cover that gap (documented in DESIGN §11).
pub fn unordered_iter(f: &SourceFile) -> Vec<Violation> {
    if !D01_CRATES.iter().any(|c| f.path.starts_with(c)) {
        return Vec::new();
    }
    let names = hash_container_names(f);
    if names.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in f.code.iter().enumerate() {
        let mut hits: Vec<(usize, String)> = Vec::new();
        // Method-style iteration: name.values() / name.drain(..) …
        for m in ITER_METHODS.iter().copied().chain([".drain("]) {
            let probe = &m[..m.len() - 1]; // match without the final ) so
                                           // `.drain(..)` also hits
            let mut from = 0usize;
            while let Some(p) = line[from..].find(probe) {
                let dot = from + p;
                let base = receiver_base(line, dot).map(str::to_string).or_else(|| {
                    // Multi-line chain: `.iter()` at line start — the
                    // receiver is the trailing identifier of the previous
                    // non-blank line (`self\n  .queries\n  .iter()`).
                    if !line[..dot].trim().is_empty() {
                        return None;
                    }
                    let prev = f.code[..idx].iter().rev().find(|l| !l.trim().is_empty())?;
                    let prev = prev.trim_end();
                    ident_ending_at(prev, prev.len()).map(str::to_string)
                });
                if let Some(base) = base {
                    if names.contains(&base) {
                        hits.push((dot, format!("`{base}{probe}…`")));
                    }
                }
                from = dot + probe.len();
            }
        }
        // Loop-style iteration: for … in &name { / for … in self.name {
        if let Some(pos) = find_for_in(line) {
            let mut expr = line[pos..].trim_start();
            expr = expr.strip_prefix("&mut ").unwrap_or(expr);
            expr = expr.strip_prefix('&').unwrap_or(expr);
            expr = expr.strip_prefix("self.").unwrap_or(expr);
            let base: String = expr.chars().take_while(|&c| is_ident_char(c)).collect();
            if names.contains(&base) {
                let after = &expr[base.len()..];
                // Direct loop over the container only (not `map[i]`,
                // `map.get(..)`, `map.len()` …) — field access and calls
                // have their own matchers above.
                if after.trim_start().starts_with('{') || after.trim().is_empty() {
                    hits.push((pos, format!("`for … in {base}`")));
                }
            }
        }
        if hits.is_empty() {
            continue;
        }
        let window = f.statement_window(idx);
        if window.contains("sort") || window.contains("BTree") {
            continue; // deterministically reordered in the same window
        }
        for (_, what) in hits {
            out.push(Violation {
                rule: D01,
                file: f.path.clone(),
                line: idx + 1,
                message: format!(
                    "{what} iterates a HashMap/HashSet in hash order; sort the result in the \
                     same statement window or justify with `// dsilint: allow({D01}, <reason>)`"
                ),
                excerpt: f.raw.get(idx).map(|l| l.trim().to_string()).unwrap_or_default(),
            });
        }
    }
    out
}

/// Byte offset just past `" in "` of a `for … in ` header on this line.
fn find_for_in(line: &str) -> Option<usize> {
    let f = line.find("for ")?;
    // `for` must be a word (start of line or preceded by non-ident).
    if f > 0 && is_ident_char(line.as_bytes()[f - 1] as char) {
        return None;
    }
    let rest = &line[f..];
    let in_pos = rest.find(" in ")?;
    Some(f + in_pos + 4)
}

/// Names in this file declared as (or initialized from) hash containers.
fn hash_container_names(f: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for line in &f.code {
        // `name: …HashMap…` / `name: …HashSet…` (field, param, let).
        let mut from = 0usize;
        while let Some(p) = line[from..].find(':') {
            let colon = from + p;
            from = colon + 1;
            if line[colon..].starts_with("::") {
                from = colon + 2;
                continue;
            }
            if colon > 0 && line.as_bytes()[colon - 1] == b':' {
                continue; // second colon of a path
            }
            let ty_end =
                line[colon + 1..].find([';', '=']).map(|e| colon + 1 + e).unwrap_or(line.len());
            let ty = &line[colon + 1..ty_end];
            if ty.contains("HashMap") || ty.contains("HashSet") {
                if let Some(name) = ident_ending_at(line, colon) {
                    push_unique(&mut names, name);
                }
            }
        }
        // `let name = HashMap::new()` style.
        for ctor in ["HashMap::", "HashSet::"] {
            if let Some(p) = line.find(ctor) {
                let lhs = &line[..p];
                if let Some(eq) = lhs.rfind('=') {
                    let lhs = lhs[..eq].trim_end();
                    if let Some(name) = ident_ending_at(lhs, lhs.len()) {
                        if lhs.trim_start().starts_with("let") || lhs.contains("let ") {
                            push_unique(&mut names, name);
                        }
                    }
                }
            }
        }
    }
    names
}

fn push_unique(names: &mut Vec<String>, name: &str) {
    if name != "Self" && !names.iter().any(|n| n == name) {
        names.push(name.to_string());
    }
}

// ----------------------------------------------------------------------
// D02 — wall-clock-and-entropy
// ----------------------------------------------------------------------

/// **D02** — ambient time / randomness outside `crates/bench`: simulation
/// code must take time from `SimTime` and randomness from seeded RNGs, or
/// replay breaks.
pub fn wall_clock_and_entropy(f: &SourceFile) -> Vec<Violation> {
    if f.path.starts_with("crates/bench/") {
        return Vec::new();
    }
    const TOKENS: [&str; 5] =
        ["Instant::now", "SystemTime::now", "thread_rng", "rand::random", "from_entropy"];
    let mut out = Vec::new();
    for (idx, line) in f.code.iter().enumerate() {
        for t in TOKENS {
            if line.contains(t) {
                out.push(Violation {
                    rule: D02,
                    file: f.path.clone(),
                    line: idx + 1,
                    message: format!(
                        "`{t}` is nondeterministic under replay; use SimTime / a seeded RNG, \
                         move it to crates/bench, or justify with \
                         `// dsilint: allow({D02}, <reason>)`"
                    ),
                    excerpt: f.raw.get(idx).map(|l| l.trim().to_string()).unwrap_or_default(),
                });
            }
        }
    }
    out
}

// ----------------------------------------------------------------------
// D03 — metrics-trace-pairing
// ----------------------------------------------------------------------

/// Lines scanned after a metrics call for the paired trace call.
const D03_WINDOW_AFTER: usize = 15;
const D03_WINDOW_BEFORE: usize = 3;

/// **D03** — every `metrics.record_hops` / `record_message` /
/// `record_route` site in the `Cluster` middleware must have its paired
/// tracer call within the surrounding statement window, mirroring the
/// contract the trace-replay conformance oracle checks dynamically
/// (`audit(trace) == Metrics`, bit for bit). Calls through the
/// `self.record_route(…)` helper count as paired — the helper itself is a
/// checked site.
pub fn metrics_trace_pairing(f: &SourceFile) -> Vec<Violation> {
    if !f.path.ends_with("core/src/cluster.rs") {
        return Vec::new();
    }
    const SITES: [&str; 3] =
        ["metrics.record_hops(", "metrics.record_message(", "metrics.record_route("];
    const PAIRED: [&str; 3] = ["tracer", "trace_into", "self.record_route("];
    let mut out = Vec::new();
    for (idx, line) in f.code.iter().enumerate() {
        if !SITES.iter().any(|s| line.contains(s)) {
            continue;
        }
        if f.in_test_region(idx + 1) {
            continue;
        }
        let lo = idx.saturating_sub(D03_WINDOW_BEFORE);
        let hi = (idx + D03_WINDOW_AFTER).min(f.code.len() - 1);
        let window = f.code[lo..=hi].join("\n");
        if PAIRED.iter().any(|p| window.contains(p)) {
            continue;
        }
        out.push(Violation {
            rule: D03,
            file: f.path.clone(),
            line: idx + 1,
            message: format!(
                "Metrics call without a paired Tracer call within {D03_WINDOW_AFTER} lines — \
                 the trace audit (`audit(trace) == Metrics`) will diverge; add the tracer call \
                 or justify with `// dsilint: allow({D03}, <reason>)`"
            ),
            excerpt: f.raw.get(idx).map(|l| l.trim().to_string()).unwrap_or_default(),
        });
    }
    out
}

// ----------------------------------------------------------------------
// R01 — hot-path-unwrap
// ----------------------------------------------------------------------

/// Files on the per-message hot path.
const R01_FILES: [&str; 10] = [
    "chord/src/router.rs",
    "chord/src/multicast.rs",
    "simnet/src/engine.rs",
    "core/src/reliability.rs",
    "core/src/load.rs",
    "core/src/store.rs",
    "core/src/sortable.rs",
    "core/src/aggregate.rs",
    "sketch/src/eh.rs",
    "sketch/src/ecm.rs",
];

/// **R01** — `unwrap()` / `expect(` on the routing / engine hot path:
/// every one is a latent crash on a malformed overlay state, so each must
/// carry an allow marker naming the invariant that makes it unreachable.
/// `#[cfg(test)]` modules are exempt.
pub fn hot_path_unwrap(f: &SourceFile) -> Vec<Violation> {
    if !R01_FILES.iter().any(|p| f.path.ends_with(p)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in f.code.iter().enumerate() {
        if f.in_test_region(idx + 1) {
            continue;
        }
        for probe in [".unwrap()", ".expect("] {
            let mut from = 0usize;
            while let Some(p) = line[from..].find(probe) {
                out.push(Violation {
                    rule: R01,
                    file: f.path.clone(),
                    line: idx + 1,
                    message: format!(
                        "`{}` on the routing hot path; name the invariant that makes it \
                         unreachable with `// dsilint: allow({R01}, <reason>)` or handle the None/Err",
                        probe.trim_end_matches('(')
                    ),
                    excerpt: f.raw.get(idx).map(|l| l.trim().to_string()).unwrap_or_default(),
                });
                from += p + probe.len();
            }
        }
    }
    out
}

// ----------------------------------------------------------------------
// S01 — charge-once-at-send
// ----------------------------------------------------------------------

/// Call shapes that resolve a send through [`ReliabilityState`]: the
/// judge itself, the reliable-multicast wrapper, the pre-resolved
/// bookkeeping entry, and the lossless-path dispatch guards.
const S01_ANCHORS: [&str; 5] = [
    "resolve_send(",
    "reliable_multicast(",
    "record_resolution(",
    "reliability.is_some(",
    "reliability.is_none(",
];

/// **S01** — every overlay send site in `crates/core` (a
/// `metrics.record_message(` bookkeeping line) must resolve through
/// `ReliabilityState` exactly once: the static mirror of the
/// charge-once-at-send invariant (DESIGN §12). Two checks, both scoped by
/// the call graph's function spans:
///
/// * a send site whose enclosing function shows none of the resolution
///   shapes *before* the site is an unresolved send — a message the
///   fault plan never saw;
/// * two `resolve_send(` calls inside one statement charge the fault
///   plan twice for a single wire message.
pub fn charge_once_at_send(ctx: &Context, f: &SourceFile) -> Vec<Violation> {
    if !f.path.starts_with("crates/core/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in f.code.iter().enumerate() {
        if f.in_test_region(idx + 1) {
            continue;
        }
        // Double charge: two resolutions in a single statement. Checked at
        // the statement's first resolving line only.
        if line.contains("resolve_send(") {
            let start = f.statement_start(idx);
            let earlier = f.code[start..idx].iter().any(|l| l.contains("resolve_send("));
            if !earlier && single_statement(f, idx).matches("resolve_send(").count() >= 2 {
                out.push(Violation {
                    rule: S01,
                    file: f.path.clone(),
                    line: idx + 1,
                    message: format!(
                        "statement resolves through ReliabilityState twice — one wire message \
                         must be charged exactly once (DESIGN §12); split the sends or justify \
                         with `// dsilint: allow({S01}, <reason>)`"
                    ),
                    excerpt: f.raw.get(idx).map(|l| l.trim().to_string()).unwrap_or_default(),
                });
            }
        }
        if !line.contains("metrics.record_message(") {
            continue;
        }
        // Unresolved send: no resolution shape between the enclosing
        // function's signature and the site.
        let encl = ctx
            .graph
            .fns
            .iter()
            .filter(|d| d.file == f.path && d.sig_line <= idx + 1 && idx < d.body_end)
            .max_by_key(|d| d.sig_line);
        let Some(encl) = encl else { continue };
        let before = f.code[encl.sig_line - 1..=idx].join("\n");
        if S01_ANCHORS.iter().any(|a| before.contains(a)) {
            continue;
        }
        out.push(Violation {
            rule: S01,
            file: f.path.clone(),
            line: idx + 1,
            message: format!(
                "send site in `{}` without a ReliabilityState resolution earlier in the \
                 function — the fault plan never judged this message (DESIGN §12); route it \
                 through resolve_send/reliable_multicast, record a pre-resolved delivery with \
                 record_resolution, or justify with `// dsilint: allow({S01}, <reason>)`",
                encl.label()
            ),
            excerpt: f.raw.get(idx).map(|l| l.trim().to_string()).unwrap_or_default(),
        });
    }
    out
}

/// The scrubbed text of just the statement containing 0-based `idx` (the
/// statement window truncated at its first top-level `;`).
fn single_statement(f: &SourceFile, idx: usize) -> String {
    let w = f.statement_window(idx);
    let mut depth = 0i32;
    for (off, c) in w.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ';' if depth <= 0 => return w[..off].to_string(),
            _ => {}
        }
    }
    w
}

// ----------------------------------------------------------------------
// X01 — class-table
// ----------------------------------------------------------------------

/// **X01** — the `MsgClass` table must stay in sync everywhere: the
/// `NUM_CLASSES` constant and every `[MsgClass; N]` array length must
/// equal the variant count, and every `match` with `MsgClass::…` patterns
/// must name every variant itself — a `_` wildcard arm silently swallows
/// newly added classes and defeats the compiler's exhaustiveness aid.
pub fn class_table(ctx: &Context, f: &SourceFile) -> Vec<Violation> {
    // Fixture files carry their own enum; the live workspace shares the one
    // from crates/simnet.
    enum_table_sync(
        f,
        X01,
        "MsgClass",
        "NUM_CLASSES",
        &ctx.msg_class_variants,
        ctx.msg_class_file.as_deref(),
    )
}

/// Shared X01/X02 machinery: audit a `NUM_*` constant, `[Enum; N]` array
/// lengths, and `match` exhaustiveness (wildcard arms rejected) against
/// the variant count of `enum_name`. A local enum definition in `f` takes
/// precedence over the workspace one (fixtures carry their own).
fn enum_table_sync(
    f: &SourceFile,
    rule: &'static str,
    enum_name: &str,
    const_name: &str,
    ctx_variants: &[String],
    ctx_file: Option<&str>,
) -> Vec<Violation> {
    let (variants, local) = match parse_enum_variants(f, enum_name) {
        Some(v) => (v, true),
        None => (ctx_variants.to_vec(), false),
    };
    if variants.is_empty() {
        return Vec::new();
    }
    let n = variants.len();
    let mut out = Vec::new();
    let mut push = |line: usize, message: String| {
        out.push(Violation {
            rule,
            file: f.path.clone(),
            line,
            message,
            excerpt: f.raw.get(line - 1).map(|l| l.trim().to_string()).unwrap_or_default(),
        });
    };

    let const_needle = format!("{const_name}: usize =");
    let array_needle = format!("[{enum_name};");
    let pat_needle = format!("{enum_name}::");
    for (idx, line) in f.code.iter().enumerate() {
        // `NUM_*: usize = k` (only meaningful next to the enum).
        if local || ctx_file == Some(f.path.as_str()) {
            if let Some(p) = line.find(&const_needle) {
                let val = line[p + const_needle.len()..]
                    .trim()
                    .trim_end_matches(';')
                    .parse::<usize>()
                    .ok();
                if val != Some(n) {
                    push(
                        idx + 1,
                        format!(
                            "{const_name} is {} but `enum {enum_name}` has {n} variants",
                            val.map_or("unparsable".to_string(), |v| v.to_string())
                        ),
                    );
                }
            }
        }
        // `[Enum; k]` array lengths. Spelling the length as the audited
        // `NUM_*` const is always in sync by construction and preferred.
        let mut from = 0usize;
        while let Some(p) = line[from..].find(&array_needle) {
            let start = from + p + array_needle.len();
            let rest = line[start..].trim_start();
            if rest.starts_with(const_name) {
                from = start;
                continue;
            }
            let len: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            if len.parse::<usize>().ok() != Some(n) {
                push(idx + 1, format!("`[{enum_name}; {len}]` out of sync with {n} variants"));
            }
            from = start;
        }
    }

    // Matches with Enum:: patterns.
    for m in find_matches(f) {
        let mut named: Vec<String> = Vec::new();
        let mut wildcard: Option<usize> = None;
        let mut relevant = false;
        for line_no in m.0..=m.1 {
            let line = &f.code[line_no - 1];
            let t = line.trim_start();
            if t.starts_with(&pat_needle) && line.contains("=>") {
                relevant = true;
                // Collect every variant named in the pattern part of the
                // arm (left of `=>`; covers `A | B =>`).
                let pat_end = line.find("=>").unwrap_or(line.len());
                let pat = &line[..pat_end];
                let mut from = 0usize;
                while let Some(p) = pat[from..].find(&pat_needle) {
                    let vstart = from + p + pat_needle.len();
                    let name: String =
                        pat[vstart..].chars().take_while(|&c| is_ident_char(c)).collect();
                    // Unknown names are the compiler's problem, not ours.
                    if variants.contains(&name) && !named.contains(&name) {
                        named.push(name);
                    }
                    from = vstart;
                }
            }
            if (t.starts_with("_ =>") || t.starts_with("_ if ")) && relevant && wildcard.is_none() {
                wildcard = Some(line_no);
            }
        }
        if !relevant {
            continue;
        }
        if let Some(w) = wildcard {
            push(
                w,
                format!(
                    "wildcard `_` arm in a `{enum_name}` match silently swallows future \
                     variants; name every one instead"
                ),
            );
        } else if named.len() != n {
            push(
                m.0,
                format!(
                    "`{enum_name}` match covers {} of {n} variants; the table drifted",
                    named.len()
                ),
            );
        }
    }
    out
}

// ----------------------------------------------------------------------
// X02 — oracle-table-sync
// ----------------------------------------------------------------------

/// **X02** — the faultsim oracle registry must stay in sync everywhere:
/// `NUM_ORACLES`, every `[OracleId; N]` array length and every `match`
/// with `OracleId::` patterns must agree with the enum's variant count
/// (wildcard arms rejected, same shape as X01) — and the oracle count
/// DESIGN.md advertises via its machine-readable marker
/// (`<!-- dsilint: oracle-count = N -->`) must match too, so the docs
/// cannot drift from the harness.
pub fn oracle_table_sync(ctx: &Context, f: &SourceFile) -> Vec<Violation> {
    let mut out = enum_table_sync(
        f,
        X02,
        "OracleId",
        "NUM_ORACLES",
        &ctx.oracle_variants,
        ctx.oracle_file.as_deref(),
    );
    // The DESIGN.md count is checked once, anchored at the enum definition.
    if let (Some(design), Some(vars)) =
        (ctx.design_oracle_count, parse_enum_variants(f, "OracleId").filter(|v| !v.is_empty()))
    {
        if design != vars.len() {
            let line =
                f.code.iter().position(|l| l.contains("enum OracleId")).map(|i| i + 1).unwrap_or(1);
            out.push(Violation {
                rule: X02,
                file: f.path.clone(),
                line,
                message: format!(
                    "DESIGN.md advertises {design} oracles (`dsilint: oracle-count`) but \
                     `enum OracleId` has {} variants; update the doc marker or the registry",
                    vars.len()
                ),
                excerpt: f.raw.get(line - 1).map(|l| l.trim().to_string()).unwrap_or_default(),
            });
        }
    }
    out
}

/// `(start_line, end_line)` 1-based inclusive spans of every `match` body.
fn find_matches(f: &SourceFile) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let joined = f.code.join("\n");
    let bytes = joined.as_bytes();
    let line_of = |pos: usize| joined[..pos].matches('\n').count() + 1;
    let mut from = 0usize;
    while let Some(p) = joined[from..].find("match ") {
        let kw = from + p;
        from = kw + 6;
        if kw > 0 && is_ident_char(bytes[kw - 1] as char) {
            continue; // part of an identifier
        }
        // Scan to the `{` opening the match body (at relative depth 0).
        let mut depth = 0i32;
        let mut body_open = None;
        for (off, c) in joined[kw..].char_indices() {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => {
                    body_open = Some(kw + off);
                    break;
                }
                '{' => depth += 1,
                '}' => depth -= 1,
                ';' if depth == 0 => break, // not a match expression after all
                _ => {}
            }
        }
        let Some(open) = body_open else { continue };
        // Find the matching close brace.
        let mut bd = 0i32;
        let mut close = None;
        for (off, c) in joined[open..].char_indices() {
            match c {
                '{' => bd += 1,
                '}' => {
                    bd -= 1;
                    if bd == 0 {
                        close = Some(open + off);
                        break;
                    }
                }
                _ => {}
            }
        }
        if let Some(close) = close {
            out.push((line_of(open), line_of(close)));
        }
    }
    out
}

/// Variant names of `pub enum <name>` in this file, if defined here.
/// Handles the simple C-like shape the class table uses (one variant per
/// line, optional trailing comma, doc comments already scrubbed).
fn parse_enum_variants(f: &SourceFile, name: &str) -> Option<Vec<String>> {
    let needle = format!("enum {name}");
    let start = f.code.iter().position(|l| {
        l.contains(&needle)
            && l[l.find(&needle).unwrap() + needle.len()..]
                .trim_start()
                .starts_with(['{', '<'].as_ref())
            || l.trim_end().ends_with(&needle)
    })?;
    let mut variants = Vec::new();
    let mut depth = 0i32;
    for line in f.code.iter().skip(start) {
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(variants);
                    }
                }
                _ => {}
            }
        }
        if depth == 1 {
            let t = line.trim();
            let ident: String = t.chars().take_while(|&c| is_ident_char(c)).collect();
            if !ident.is_empty()
                && ident.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && (t.len() == ident.len() || t[ident.len()..].starts_with([',', '(', ' ', '{']))
                && !t.contains("enum ")
            {
                variants.push(ident);
            }
        }
    }
    None
}
