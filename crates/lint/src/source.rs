//! Parsed view of one `.rs` file: scrubbed code, allow markers, test
//! regions and the statement-window helper the rules share.

use crate::lexer::{scrub, Scrubbed};

/// One `// dsilint: allow(<rule>, <reason>)` marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// 1-based code line the marker applies to (its own line for trailing
    /// markers, the next non-blank code line for standalone comment lines).
    pub applies_to: usize,
    /// Rule slug, e.g. `unordered-iter`.
    pub rule: String,
    /// Free-text justification. Required; a reason containing `TODO` does
    /// not suppress (scaffolding from `--fix-markers` must be finished).
    pub reason: String,
}

/// A `.rs` file ready for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Raw source lines (for excerpts and `--fix-markers`).
    pub raw: Vec<String>,
    /// Scrubbed lines (comment/literal contents blanked).
    pub code: Vec<String>,
    /// Parsed allow markers.
    pub markers: Vec<Marker>,
    /// `(start, end)` 1-based inclusive line ranges of `#[cfg(test)]`
    /// module bodies.
    pub test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Parses `content` as the file at workspace-relative `path`.
    pub fn parse(path: &str, content: &str) -> SourceFile {
        let Scrubbed { code, comments } = scrub(content);
        let raw: Vec<String> = content.split('\n').map(str::to_string).collect();
        let markers = parse_markers(&code, &comments);
        let test_regions = find_test_regions(&code);
        SourceFile { path: path.replace('\\', "/"), raw, code, markers, test_regions }
    }

    /// Whether 1-based `line` lies inside a `#[cfg(test)]` module.
    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| s <= line && line <= e)
    }

    /// The marker reason suppressing `rule` at `line`, if any (markers with
    /// `TODO` reasons never suppress).
    pub fn allow_reason(&self, rule: &str, line: usize) -> Option<&str> {
        self.markers
            .iter()
            .find(|m| m.applies_to == line && m.rule == rule && !m.reason.contains("TODO"))
            .map(|m| m.reason.as_str())
    }

    /// The scrubbed text of the statement containing 0-based line `idx`
    /// *plus the immediately following statement* — the window in which a
    /// sort may neutralize an unordered-iteration site (the idiomatic
    /// `collect(); sort();` pair spans two statements).
    ///
    /// Statement boundaries are `;` at the bracket depth of the statement's
    /// first line; the window also ends when the enclosing block closes.
    pub fn statement_window(&self, idx: usize) -> String {
        let start = self.statement_start(idx);
        let mut out = String::new();
        let mut depth: i32 = 0;
        let mut semis = 0;
        for line in self.code.iter().skip(start) {
            for c in line.chars() {
                out.push(c);
                match c {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' => depth -= 1,
                    '}' => {
                        depth -= 1;
                        if depth < 0 {
                            return out;
                        }
                    }
                    ';' if depth <= 0 => {
                        semis += 1;
                        if semis == 2 {
                            return out;
                        }
                    }
                    _ => {}
                }
            }
            out.push('\n');
        }
        out
    }

    /// 0-based first line of the statement containing 0-based `idx`: the
    /// line after the nearest earlier line whose code ends in `;`, `{`, `}`
    /// or `,` (attribute lines and blank/comment-only lines are skipped
    /// over when they trail such a boundary).
    pub fn statement_start(&self, idx: usize) -> usize {
        let mut start = idx;
        while start > 0 {
            let prev = self.code[start - 1].trim_end();
            let prev_trim = prev.trim_start();
            if prev.ends_with(';')
                || prev.ends_with('{')
                || prev.ends_with('}')
                || prev.ends_with(',')
                || prev_trim.starts_with('#')
                || prev_trim.is_empty()
            {
                break;
            }
            start -= 1;
        }
        start
    }
}

/// Parse `dsilint: allow(rule, reason)` out of comment texts and resolve
/// which code line each applies to.
fn parse_markers(code: &[String], comments: &[(usize, String)]) -> Vec<Marker> {
    let mut out = Vec::new();
    for (line, text) in comments {
        let Some(pos) = text.find("dsilint:") else { continue };
        let rest = text[pos + "dsilint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(").and_then(|r| r.find(')').map(|e| &r[..e]))
        else {
            continue;
        };
        let (rule, reason) = match args.split_once(',') {
            Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
            None => (args.trim().to_string(), String::new()),
        };
        if rule.is_empty() || reason.is_empty() {
            // Reason-less markers never suppress: the rule still fires,
            // which is exactly the pressure that makes someone write one.
            continue;
        }
        // Trailing marker: code on the same line. Standalone comment line:
        // applies to the next line carrying code.
        let own = code.get(line - 1).map(|l| !l.trim().is_empty()).unwrap_or(false);
        let applies_to = if own {
            *line
        } else {
            (*line + 1..=code.len()).find(|&l| !code[l - 1].trim().is_empty()).unwrap_or(*line)
        };
        out.push(Marker { applies_to, rule, reason });
    }
    out
}

/// Locate `#[cfg(test)] mod …` bodies by brace matching on scrubbed code.
fn find_test_regions(code: &[String]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].trim_start().starts_with("#[cfg(test)") {
            // Find the opening brace of the item that follows.
            let mut depth: i32 = 0;
            let mut opened = false;
            let start = i + 1; // 1-based line of the attribute
            'scan: for (j, line) in code.iter().enumerate().skip(i) {
                for c in line.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth -= 1;
                            if opened && depth == 0 {
                                out.push((start, j + 1));
                                i = j;
                                break 'scan;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_and_standalone_markers_resolve() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = m.values(); // dsilint: allow(unordered-iter, summed)\n\
             // dsilint: allow(hot-path-unwrap, checked above)\n\
             let b = v.unwrap();\n",
        );
        assert_eq!(f.allow_reason("unordered-iter", 1), Some("summed"));
        assert_eq!(f.allow_reason("hot-path-unwrap", 3), Some("checked above"));
        assert_eq!(f.allow_reason("hot-path-unwrap", 2), None);
    }

    #[test]
    fn todo_reasons_do_not_suppress() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = m.values(); // dsilint: allow(unordered-iter, TODO: justify)\n",
        );
        assert_eq!(f.allow_reason("unordered-iter", 1), None);
    }

    #[test]
    fn reasonless_markers_do_not_suppress() {
        let f = SourceFile::parse("x.rs", "m.values(); // dsilint: allow(unordered-iter)\n");
        assert_eq!(f.allow_reason("unordered-iter", 1), None);
    }

    #[test]
    fn test_regions_cover_mod_bodies() {
        let f = SourceFile::parse(
            "x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n",
        );
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(3));
        assert!(f.in_test_region(4));
        assert!(f.in_test_region(5));
        assert!(!f.in_test_region(6));
    }

    #[test]
    fn statement_window_spans_collect_then_sort() {
        let f = SourceFile::parse(
            "x.rs",
            "fn f() {\n    let mut v: Vec<u32> = m\n        .values()\n        .collect();\n    v.sort_unstable();\n    other();\n}\n",
        );
        let w = f.statement_window(2); // the .values() line
        assert!(w.contains("sort_unstable"), "window: {w}");
        assert!(!w.contains("other"), "window must stop after 2 statements: {w}");
    }

    #[test]
    fn statement_window_stops_at_block_end() {
        let f = SourceFile::parse(
            "x.rs",
            "fn f() {\n    for x in m.values() {\n        eat(x);\n    }\n}\nfn g() { sorted(); }\n",
        );
        let w = f.statement_window(1);
        assert!(!w.contains("sorted"), "window leaked past block end: {w}");
    }
}
