//! A hand-written, dependency-free Rust *scrubbing* lexer.
//!
//! The rule engine works on source text, so it must never be fooled by a
//! `HashMap` mentioned inside a doc comment or an `Instant::now` inside a
//! string literal. This module walks the raw source once and produces:
//!
//! * **scrubbed code lines** — the source with the contents of every
//!   comment, string literal, raw string literal, byte string and char
//!   literal replaced by spaces (line structure preserved, so `file:line`
//!   spans computed on the scrubbed text are valid for the raw text);
//! * **comments** — the text of every `//` / `/* */` comment with the line
//!   it starts on, for allow-marker parsing.
//!
//! The lexer understands the token shapes that matter for scrubbing:
//! nested block comments, escape sequences in strings, raw strings with an
//! arbitrary number of `#`s, byte strings/chars, and the `'` ambiguity
//! between char literals, lifetimes and loop labels.

/// Output of [`scrub`].
#[derive(Debug, Clone)]
pub struct Scrubbed {
    /// Source lines with comment and literal contents blanked to spaces.
    pub code: Vec<String>,
    /// `(1-based start line, comment text)` for every comment.
    pub comments: Vec<(usize, String)>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    /// Nesting depth of `/* */`.
    BlockComment(u32),
    /// Inside `"…"`; `true` after a backslash.
    Str(bool),
    /// Inside `r##"…"##` with this many `#`s.
    RawStr(u32),
    /// Inside `'…'`; `true` after a backslash.
    CharLit(bool),
}

/// Whether `c` can appear inside an identifier (so a preceding one means an
/// `r` / `b` is *part of* an identifier, not a raw/byte-literal prefix).
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scrub `src`, blanking comment and literal contents. See module docs.
pub fn scrub(src: &str) -> Scrubbed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut comment_buf = String::new();
    let mut comment_line = 0usize;
    let mut state = State::Normal;
    let mut line = 1usize;
    let mut prev_ident = false; // last emitted Normal char was an ident char
    let mut i = 0usize;

    macro_rules! flush_comment {
        () => {
            if !comment_buf.is_empty() {
                comments.push((comment_line, std::mem::take(&mut comment_buf)));
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Normal => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    comment_line = line;
                    comment_buf.clear();
                    out.push_str("  ");
                    i += 2;
                    prev_ident = false;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    comment_line = line;
                    comment_buf.clear();
                    out.push_str("  ");
                    i += 2;
                    prev_ident = false;
                    continue;
                }
                '"' => {
                    state = State::Str(false);
                    out.push(' ');
                    prev_ident = false;
                }
                'r' | 'b' if !prev_ident => {
                    // Possible raw-string / byte-string / byte-char prefix:
                    // r"…", r#"…"#, br"…", b"…", b'…'.
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let raw_prefix = c == 'r' || chars.get(i + 1) == Some(&'r');
                    if chars.get(j) == Some(&'"') && (raw_prefix || hashes == 0) {
                        if raw_prefix {
                            for _ in i..=j {
                                out.push(' ');
                            }
                            state = State::RawStr(hashes);
                            i = j + 1;
                            prev_ident = false;
                            continue;
                        }
                        // b"…": plain string with a byte prefix.
                        out.push(' '); // the `b`
                        out.push(' '); // the `"`
                        state = State::Str(false);
                        i += 2;
                        prev_ident = false;
                        continue;
                    }
                    if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                        out.push(' '); // the `b`
                        out.push(' '); // the `'`
                        state = State::CharLit(false);
                        i += 2;
                        prev_ident = false;
                        continue;
                    }
                    out.push(c);
                    prev_ident = true;
                }
                '\'' => {
                    // Char literal vs lifetime/label. A char literal is
                    // `'x'` or `'\…'`; a lifetime is `'ident` with no
                    // closing quote right after one ident char.
                    if next == Some('\\') {
                        state = State::CharLit(false);
                        out.push(' ');
                        i += 1; // consume the quote; backslash handled below
                        prev_ident = false;
                        // Re-enter loop so CharLit sees the backslash.
                        continue;
                    }
                    if let Some(n) = next {
                        if chars.get(i + 2) == Some(&'\'') && n != '\'' {
                            // 'x' — a one-char literal.
                            out.push_str("   ");
                            i += 3;
                            prev_ident = false;
                            continue;
                        }
                    }
                    // Lifetime or label: keep it (harmless identifiers).
                    out.push(c);
                    prev_ident = false;
                }
                '\n' => {
                    out.push('\n');
                    line += 1;
                    prev_ident = false;
                }
                _ => {
                    out.push(c);
                    prev_ident = is_ident(c);
                }
            },
            State::LineComment => {
                if c == '\n' {
                    flush_comment!();
                    state = State::Normal;
                    out.push('\n');
                    line += 1;
                } else {
                    comment_buf.push(c);
                    out.push(' ');
                }
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        flush_comment!();
                        state = State::Normal;
                    } else {
                        state = State::BlockComment(depth - 1);
                        comment_buf.push_str("*/");
                    }
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    comment_buf.push_str("/*");
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '\n' {
                    comment_buf.push('\n');
                    out.push('\n');
                    line += 1;
                } else {
                    comment_buf.push(c);
                    out.push(' ');
                }
            }
            State::Str(escaped) => {
                if c == '\n' {
                    out.push('\n');
                    line += 1;
                    state = State::Str(false);
                } else {
                    out.push(' ');
                    state = match (escaped, c) {
                        (false, '\\') => State::Str(true),
                        (false, '"') => State::Normal,
                        _ => State::Str(false),
                    };
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes as usize;
                        state = State::Normal;
                        continue;
                    }
                }
                if c == '\n' {
                    out.push('\n');
                    line += 1;
                } else {
                    out.push(' ');
                }
            }
            State::CharLit(escaped) => {
                if c == '\n' {
                    // Malformed literal; bail back to normal scanning.
                    out.push('\n');
                    line += 1;
                    state = State::Normal;
                } else {
                    out.push(' ');
                    state = match (escaped, c) {
                        (false, '\\') => State::CharLit(true),
                        (false, '\'') => State::Normal,
                        _ => State::CharLit(false),
                    };
                }
            }
        }
        i += 1;
    }
    if matches!(state, State::LineComment | State::BlockComment(_)) {
        flush_comment!();
    }

    Scrubbed { code: out.split('\n').map(str::to_string).collect(), comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked_and_collected() {
        let s = scrub("let x = 1; // HashMap here\nlet y = 2;");
        assert!(!s.code[0].contains("HashMap"));
        assert!(s.code[0].contains("let x = 1;"));
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0], (1, " HashMap here".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let s = scrub("a /* outer /* inner */ still */ b");
        assert_eq!(s.code[0].trim_start().chars().next(), Some('a'));
        assert!(s.code[0].contains('b'));
        assert!(!s.code[0].contains("inner"));
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].1.contains("inner"));
    }

    #[test]
    fn strings_are_blanked_including_escapes() {
        let s = scrub(r#"let s = "Instant::now \" still string"; let t = 1;"#);
        assert!(!s.code[0].contains("Instant"));
        assert!(s.code[0].contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let s = scrub(r####"let s = r##"thread_rng " quote"##; let u = 2;"####);
        assert!(!s.code[0].contains("thread_rng"));
        assert!(s.code[0].contains("let u = 2;"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let s = scrub("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert!(s.code[0].contains("<'a>"), "lifetime kept: {}", s.code[0]);
        assert!(s.code[0].contains("&'a str"));
        assert!(!s.code[0].contains("'x'"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let s = scrub(r#"let a = b"SystemTime::now"; let b2 = b'Z'; let k = 3;"#);
        assert!(!s.code[0].contains("SystemTime"));
        assert!(!s.code[0].contains('Z'));
        assert!(s.code[0].contains("let k = 3;"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let s = scrub(r#"let var = 1; for r in 0..2 { attr"x"; }"#);
        // `attr"x"` — the r belongs to the identifier, the string is plain.
        assert!(s.code[0].contains("attr"));
        assert!(!s.code[0].contains('x'));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "a\n/* two\nlines */\nlet s = \"x\ny\";\nz";
        let s = scrub(src);
        assert_eq!(s.code.len(), 6);
        assert_eq!(s.code[5], "z");
        assert_eq!(s.comments[0].0, 2);
    }

    #[test]
    fn comment_markers_inside_strings_are_ignored() {
        let s = scrub(r#"let s = "// not a comment"; real();"#);
        assert!(s.comments.is_empty());
        assert!(s.code[0].contains("real();"));
    }
}
