//! `dsi-lint` — a tidy-style, dependency-free determinism & invariant
//! linter for the dsindex workspace.
//!
//! The repo's whole test strategy (golden-report byte-identity, trace
//! digests, bit-identical parallel ingest, `audit(trace) == Metrics`)
//! rests on source-level invariants that no unit test can see being
//! eroded: unordered `HashMap` iteration feeding routed state, ambient
//! wall-clock or entropy in simulation crates, a `Metrics` call without
//! its paired `Tracer` call. This crate checks them statically on every
//! commit, in the spirit of rust-lang/rust's `tidy`.
//!
//! Layers:
//! * [`lexer`] — scrubbing lexer: blanks comments/literals, keeps lines;
//! * [`source`] — per-file model: allow markers, test regions, statement
//!   windows;
//! * [`callgraph`] — nominal workspace call graph + reachability (the v2
//!   multi-pass substrate);
//! * [`rules`] — the eight rules (A01, D01, D02, D03, R01, S01, X01, X02);
//! * [`baseline`] — record/burn-down file for pre-existing violations;
//! * [`engine`] — workspace walk, two-pass run, reports, `--fix-markers`.

pub mod baseline;
pub mod callgraph;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;

pub use baseline::Baseline;
pub use engine::{lint_files, lint_files_with, parse_workspace, run, Outcome};
pub use rules::{Context, Violation};
pub use source::SourceFile;
