//! `dsi-lint` CLI.
//!
//! ```text
//! cargo run -p dsi-lint -- --check                      # CI gate
//! cargo run -p dsi-lint -- --check --baseline results/lint_baseline.json
//! cargo run -p dsi-lint -- --write-baseline results/lint_baseline.json
//! cargo run -p dsi-lint -- --fix-markers                # insert TODO markers
//! cargo run -p dsi-lint -- --max-baseline-age-days 14   # nightly burn-down
//! ```
//!
//! Exit codes: 0 clean, 1 violations (or stale baseline entries under
//! `--check`), 2 usage / IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use dsi_lint::baseline::{self, Baseline};
use dsi_lint::engine;

struct Opts {
    root: PathBuf,
    check: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    fix_markers: bool,
    report: Option<PathBuf>,
    max_baseline_age_days: Option<i64>,
}

fn usage() -> &'static str {
    "dsi-lint: determinism & invariant linter\n\
     \n\
     USAGE: dsi-lint [--root DIR] [--check] [--baseline FILE]\n\
            [--write-baseline FILE] [--fix-markers] [--report FILE]\n\
            [--max-baseline-age-days N]\n\
     \n\
       --root DIR                  workspace root (default: .)\n\
       --check                     CI mode: exit 1 on unannotated violations\n\
       --baseline FILE             ignore violations recorded in FILE\n\
       --write-baseline FILE       record current violations into FILE\n\
       --fix-markers               insert `// dsilint: allow(<rule>, TODO: justify)`\n\
                                   scaffolding above each violation (TODO reasons\n\
                                   do not suppress — finish them by hand)\n\
       --report FILE               write a JSON violation report to FILE\n\
       --max-baseline-age-days N   with --check: fail if any baseline entry\n\
                                   is older than N days (nightly burn-down)\n"
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        root: PathBuf::from("."),
        check: false,
        baseline: None,
        write_baseline: None,
        fix_markers: false,
        report: None,
        max_baseline_age_days: None,
    };
    let mut i = 0usize;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--root" => o.root = PathBuf::from(value(&mut i, "--root")?),
            "--check" => o.check = true,
            "--baseline" => o.baseline = Some(PathBuf::from(value(&mut i, "--baseline")?)),
            "--write-baseline" => {
                o.write_baseline = Some(PathBuf::from(value(&mut i, "--write-baseline")?))
            }
            "--fix-markers" => o.fix_markers = true,
            "--report" => o.report = Some(PathBuf::from(value(&mut i, "--report")?)),
            "--max-baseline-age-days" => {
                o.max_baseline_age_days = Some(
                    value(&mut i, "--max-baseline-age-days")?
                        .parse()
                        .map_err(|_| "--max-baseline-age-days needs an integer".to_string())?,
                )
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Ok(o)
}

/// Today as days since the Unix epoch, from the system clock. The linter
/// is a build tool, not simulation code: wall-clock here only stamps
/// baseline entries and ages them for the burn-down check.
fn today_days() -> i64 {
    // dsilint: allow(wall-clock-and-entropy, build tool stamping baseline dates, not simulation code)
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    secs.div_euclid(86_400)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("dsi-lint: {msg}\n");
            }
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let baseline = match &opts.baseline {
        Some(path) => {
            let full = if path.is_absolute() { path.clone() } else { opts.root.join(path) };
            match std::fs::read_to_string(&full) {
                Ok(text) => match Baseline::parse(&text) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("dsi-lint: malformed baseline {}: {e}", full.display());
                        return ExitCode::from(2);
                    }
                },
                Err(e) => {
                    eprintln!("dsi-lint: cannot read baseline {}: {e}", full.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => Baseline::default(),
    };

    let outcome = engine::run(&opts.root, &baseline);
    print!("{}", engine::render_text(&outcome));

    if let Some(path) = &opts.report {
        let full = if path.is_absolute() { path.clone() } else { opts.root.join(path) };
        if let Err(e) = std::fs::write(&full, engine::render_json(&outcome)) {
            eprintln!("dsi-lint: cannot write report {}: {e}", full.display());
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &opts.write_baseline {
        let full = if path.is_absolute() { path.clone() } else { opts.root.join(path) };
        let today = baseline::days_to_date(today_days());
        let mut b = baseline::from_violations(&outcome.violations, &today);
        // Keep still-covered old entries with their original dates so the
        // burn-down clock doesn't reset on rewrite.
        for old in &baseline.entries {
            if let Some(e) = b
                .entries
                .iter_mut()
                .find(|e| e.rule == old.rule && e.file == old.file && e.excerpt == old.excerpt)
            {
                e.introduced = old.introduced.clone();
            }
        }
        b.entries.extend(outcome.baselined.iter().filter_map(|v| {
            baseline
                .entries
                .iter()
                .find(|e| e.rule == v.rule && e.file == v.file && e.excerpt == v.excerpt)
                .cloned()
        }));
        if let Err(e) = std::fs::write(&full, b.emit()) {
            eprintln!("dsi-lint: cannot write baseline {}: {e}", full.display());
            return ExitCode::from(2);
        }
        println!("dsi-lint: wrote {} entr(ies) to {}", b.entries.len(), full.display());
    }

    if opts.fix_markers {
        let edits = engine::fix_markers(&opts.root, &outcome);
        for (path, content) in &edits {
            if let Err(e) = std::fs::write(path, content) {
                eprintln!("dsi-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        println!(
            "dsi-lint: scaffolded TODO markers in {} file(s) — fill in real reasons; \
             TODO reasons do not suppress",
            edits.len()
        );
    }

    if opts.check {
        let mut failed = false;
        if !outcome.violations.is_empty() {
            eprintln!("dsi-lint: FAILED — {} unannotated violation(s)", outcome.violations.len());
            failed = true;
        }
        let dead = baseline.dead(&outcome.baselined);
        if !dead.is_empty() {
            eprintln!(
                "dsi-lint: FAILED — {} stale baseline entr(ies) match no current source line \
                 (re-run --write-baseline to prune):",
                dead.len()
            );
            for e in dead {
                eprintln!("  {}:{} [{}] introduced {}", e.file, e.line, e.rule, e.introduced);
            }
            failed = true;
        }
        if let Some(max_age) = opts.max_baseline_age_days {
            let stale = baseline.stale(today_days(), max_age);
            if !stale.is_empty() {
                eprintln!(
                    "dsi-lint: FAILED — {} baseline entr(ies) older than {max_age} days:",
                    stale.len()
                );
                for e in stale {
                    eprintln!("  {}:{} [{}] introduced {}", e.file, e.line, e.rule, e.introduced);
                }
                failed = true;
            }
        }
        if failed {
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
