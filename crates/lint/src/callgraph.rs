//! Workspace call graph extracted from the scrubbed-token model.
//!
//! This is the nominal, tidy-style graph the v2 rules (A01, S01) walk: it
//! knows `fn` definitions, which `impl` block each lives in, and the call
//! sites inside each body — all recovered textually from scrubbed code,
//! with no type information. Resolution is therefore an
//! *over-approximation* (DESIGN.md §16):
//!
//! * `Type::name(…)` resolves to every `fn name` inside an `impl Type`
//!   (any trait) anywhere in the graph crates;
//! * `.name(…)` method calls resolve to every `fn name` inside *any*
//!   `impl` — the receiver's type is unknown, so same-named methods on
//!   unrelated types are all considered reachable;
//! * bare `name(…)` resolves to every free `fn name` plus same-`impl`
//!   methods (covering `Self`-less internal calls).
//!
//! Over-approximation errs on the side of flagging: a function is never
//! silently missing from a reachability set, but name collisions can pull
//! unrelated code in. The escape hatch is a function-level
//! `// dsilint: allow(hot-path-alloc, <reason>)` marker on the `fn` line
//! (directly above it, below any attributes): it marks a *cold boundary* —
//! the function is excluded from the hot set, its body is not scanned, and
//! traversal does not continue through it.

use crate::source::SourceFile;

/// Crates whose functions participate in the graph: the shipped runtime
/// path. Benches, the fault harness, stream generators and the linter
/// itself never run inside the ingest hot path, and including them only
/// adds name-collision noise to the nominal resolution.
const GRAPH_CRATES: [&str; 7] = [
    "crates/core/",
    "crates/chord/",
    "crates/simnet/",
    "crates/dsp/",
    "crates/sketch/",
    "crates/trace/",
    "crates/hierarchy/",
];

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// 1-based line of the opening parenthesis.
    pub line: usize,
    /// `Type` of a `Type::name(…)` path call (`Self` resolved by the
    /// walker), `None` for free and method calls.
    pub qual: Option<String>,
    /// Called name.
    pub name: String,
    /// `.name(…)` receiver call.
    pub method: bool,
}

/// One `fn` definition with a body.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Enclosing `impl` type, if any (`impl Trait for Type` records `Type`).
    pub qual: Option<String>,
    /// Bare function name.
    pub name: String,
    /// 1-based line of the `fn` keyword (allow markers anchor here).
    pub sig_line: usize,
    /// 1-based line of the body's closing `}`.
    pub body_end: usize,
    /// Call sites in the body.
    pub calls: Vec<Call>,
}

impl FnDef {
    /// `Type::name` or bare `name`, for messages.
    pub fn label(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// All function definitions in the graph crates.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    pub fns: Vec<FnDef>,
}

/// One member of a reachability set.
#[derive(Debug, Clone)]
pub struct Reached {
    /// Index into [`Graph::fns`].
    pub fn_idx: usize,
    /// Witness call chain from an entry point, `a::b → c::d → …`.
    pub via: String,
}

impl Graph {
    /// Extract every `fn` definition (with its call sites) from the graph
    /// crates. Test regions, `tests/` directories and non-runtime crates
    /// are excluded.
    pub fn build(files: &[SourceFile]) -> Graph {
        let mut fns = Vec::new();
        for f in files {
            let in_scope =
                GRAPH_CRATES.iter().any(|c| f.path.starts_with(c)) || f.path.starts_with("src/");
            if !in_scope || f.path.contains("/tests/") || f.path.starts_with("tests/") {
                continue;
            }
            extract(f, &mut fns);
        }
        fns.sort_by(|a, b| (a.file.as_str(), a.sig_line).cmp(&(b.file.as_str(), b.sig_line)));
        Graph { fns }
    }

    /// BFS reachability from `entries` (`(impl type, fn name)` pairs).
    /// `cold` marks boundary functions: they are neither scanned nor
    /// traversed through. Deterministic order (file, line).
    pub fn reachable(
        &self,
        entries: &[(&str, &str)],
        cold: &dyn Fn(&FnDef) -> bool,
    ) -> Vec<Reached> {
        let mut via: Vec<Option<String>> = vec![None; self.fns.len()];
        let mut queue: Vec<usize> = Vec::new();
        for (i, fd) in self.fns.iter().enumerate() {
            let is_entry =
                entries.iter().any(|(q, n)| fd.qual.as_deref() == Some(*q) && fd.name == *n);
            if is_entry && !cold(fd) {
                via[i] = Some(fd.label());
                queue.push(i);
            }
        }
        let mut head = 0usize;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            let caller_qual = self.fns[cur].qual.clone();
            let caller_via = via[cur].clone().unwrap_or_default();
            for call in self.fns[cur].calls.clone() {
                let want_qual = match call.qual.as_deref() {
                    Some("Self") => caller_qual.clone(),
                    Some(q) => Some(q.to_string()),
                    None => None,
                };
                for (i, fd) in self.fns.iter().enumerate() {
                    if via[i].is_some() || fd.name != call.name {
                        continue;
                    }
                    let hit = if call.method {
                        fd.qual.is_some()
                    } else if call.qual.is_some() {
                        fd.qual == want_qual
                    } else {
                        fd.qual.is_none() || fd.qual == caller_qual
                    };
                    if !hit || cold(fd) {
                        continue;
                    }
                    via[i] = Some(format!("{caller_via} → {}", fd.label()));
                    queue.push(i);
                }
            }
        }
        let mut out: Vec<Reached> = via
            .into_iter()
            .enumerate()
            .filter_map(|(fn_idx, v)| v.map(|via| Reached { fn_idx, via }))
            .collect();
        out.sort_by_key(|r| (self.fns[r.fn_idx].file.clone(), self.fns[r.fn_idx].sig_line));
        out
    }
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Extract `fn` definitions from one scrubbed file into `out`.
fn extract(f: &SourceFile, out: &mut Vec<FnDef>) {
    let joined = f.code.join("\n");
    let bytes = joined.as_bytes();
    // Byte offset of each line start, for offset → line mapping.
    let mut line_starts = vec![0usize];
    for (i, b) in bytes.iter().enumerate() {
        if *b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |off: usize| line_starts.partition_point(|&s| s <= off);

    let impls = impl_spans(&joined);

    let mut from = 0usize;
    while let Some(p) = joined[from..].find("fn ") {
        let kw = from + p;
        from = kw + 3;
        if kw > 0 && is_ident_char(bytes[kw - 1]) {
            continue; // part of an identifier
        }
        let mut i = kw + 3;
        while i < bytes.len() && bytes[i] == b' ' {
            i += 1;
        }
        if joined[i..].starts_with("r#") {
            i += 2;
        }
        let name_start = i;
        while i < bytes.len() && is_ident_char(bytes[i]) {
            i += 1;
        }
        if i == name_start {
            continue; // `fn` not followed by a name (fn-pointer type etc.)
        }
        let name = joined[name_start..i].to_string();
        // Scan to the body-opening `{` (or a `;` for bodyless trait decls)
        // at paren/bracket depth 0.
        let mut depth = 0i32;
        let mut open = None;
        for (off, c) in joined[i..].char_indices() {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => {
                    open = Some(i + off);
                    break;
                }
                ';' if depth == 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = matching_brace(&joined, open) else { continue };
        let sig_line = line_of(kw);
        if f.in_test_region(sig_line) {
            continue;
        }
        let qual = impls
            .iter()
            .filter(|(_, s, e)| *s < kw && kw < *e)
            .max_by_key(|(_, s, _)| *s)
            .map(|(q, _, _)| q.clone());
        out.push(FnDef {
            file: f.path.clone(),
            qual,
            name,
            sig_line,
            body_end: line_of(close),
            calls: extract_calls(&joined, open, close, &line_of),
        });
    }
}

/// `(type, body_open_offset, body_close_offset)` for every `impl` block.
fn impl_spans(joined: &str) -> Vec<(String, usize, usize)> {
    let bytes = joined.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = joined[from..].find("impl") {
        let kw = from + p;
        from = kw + 4;
        if kw > 0 && is_ident_char(bytes[kw - 1]) {
            continue;
        }
        let after = bytes.get(kw + 4).copied().unwrap_or(b' ');
        if after != b' ' && after != b'<' && after != b'\n' {
            continue; // `impl_detail` etc.
        }
        // Header runs to the first `{` at paren/bracket depth 0.
        let mut depth = 0i32;
        let mut open = None;
        for (off, c) in joined[kw..].char_indices().skip(4) {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => {
                    open = Some(kw + off);
                    break;
                }
                ';' if depth == 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = matching_brace(joined, open) else { continue };
        let header = &joined[kw + 4..open];
        if let Some(ty) = impl_type(header) {
            out.push((ty, open, close));
        }
    }
    out
}

/// The nominal self type of an `impl` header (generics stripped,
/// `impl Trait for Type` → `Type`, last path segment).
fn impl_type(header: &str) -> Option<String> {
    let mut rest = header.trim_start();
    // Strip the generic parameter list of `impl<…>`.
    if rest.starts_with('<') {
        let mut depth = 0i32;
        let mut end = None;
        for (off, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(off + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &rest[end?..];
    }
    // `impl Trait for Type` — the self type is after the last ` for `.
    let ty_text = match rest.find(" for ") {
        Some(p) => &rest[p + 5..],
        None => rest,
    };
    let ty_text = ty_text.trim_start();
    // Drop a `where` clause, take the last `::` segment, strip generics.
    let ty_text = ty_text.split(" where").next().unwrap_or(ty_text).trim();
    let seg = ty_text.rsplit("::").next().unwrap_or(ty_text);
    let name: String =
        seg.trim_start().chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    (!name.is_empty()).then_some(name)
}

/// Matching `}` offset for the `{` at `open`.
fn matching_brace(joined: &str, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, c) in joined[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

/// Call sites between body offsets `open..close`.
fn extract_calls(
    joined: &str,
    open: usize,
    close: usize,
    line_of: &dyn Fn(usize) -> usize,
) -> Vec<Call> {
    const KEYWORDS: [&str; 7] = ["if", "for", "while", "match", "loop", "return", "in"];
    let bytes = joined.as_bytes();
    let mut out = Vec::new();
    for paren in open..close {
        if bytes[paren] != b'(' {
            continue;
        }
        let mut s = paren;
        while s > open && is_ident_char(bytes[s - 1]) {
            s -= 1;
        }
        if s == paren {
            continue; // no ident directly before `(` (macros end in `!`)
        }
        let name = &joined[s..paren];
        if KEYWORDS.contains(&name) || name.as_bytes()[0].is_ascii_digit() {
            continue;
        }
        let before = &joined[..s];
        let (qual, method) = if before.ends_with("..") {
            (None, false) // range expression, not a method call
        } else if before.ends_with('.') {
            (None, true)
        } else if before.ends_with("::") {
            let q_end = s - 2;
            let mut q_start = q_end;
            while q_start > 0 && is_ident_char(bytes[q_start - 1]) {
                q_start -= 1;
            }
            if q_start == q_end {
                (None, false) // `<T as Trait>::…` and friends: unresolved
            } else {
                (Some(joined[q_start..q_end].to_string()), false)
            }
        } else {
            (None, false)
        };
        // Tuple-struct and enum-variant constructors are capitalized and
        // never allocate by themselves; skip unqualified ones.
        if qual.is_none() && !method && name.as_bytes()[0].is_ascii_uppercase() {
            continue;
        }
        out.push(Call { line: line_of(paren), qual, name: name.to_string(), method });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(src: &str) -> Graph {
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        Graph::build(&[f])
    }

    #[test]
    fn fns_get_their_impl_qualifier() {
        let g = graph(
            "impl Cluster {\n    pub fn post_value(&mut self) { self.step(); }\n    fn step(&mut self) {}\n}\npub fn free() {}\n",
        );
        let labels: Vec<String> = g.fns.iter().map(FnDef::label).collect();
        assert_eq!(labels, vec!["Cluster::post_value", "Cluster::step", "free"]);
    }

    #[test]
    fn trait_impls_record_the_self_type() {
        let g = graph("impl Clone for Grid {\n    fn clone(&self) -> Grid { Grid }\n}\n");
        assert_eq!(g.fns[0].qual.as_deref(), Some("Grid"));
    }

    #[test]
    fn generic_impls_strip_parameters() {
        let g = graph("impl<T: Ord> Store<T> {\n    fn get(&self) {}\n}\n");
        assert_eq!(g.fns[0].qual.as_deref(), Some("Store"));
    }

    #[test]
    fn method_calls_reach_any_impl_of_that_name() {
        let g = graph(
            "impl Cluster {\n    pub fn post_value(&mut self) { self.sketch.update(1); }\n}\nimpl Sketch {\n    fn update(&mut self, v: u64) { grow(); }\n}\nfn grow() {}\n",
        );
        let hot = g.reachable(&[("Cluster", "post_value")], &|_| false);
        let labels: Vec<String> = hot.iter().map(|r| g.fns[r.fn_idx].label()).collect();
        assert_eq!(labels, vec!["Cluster::post_value", "Sketch::update", "grow"]);
        assert!(hot[2].via.contains("Sketch::update → grow"), "{}", hot[2].via);
    }

    #[test]
    fn cold_boundary_stops_traversal() {
        let g = graph(
            "impl Cluster {\n    pub fn post_value(&mut self) { self.emit(); }\n    fn emit(&mut self) { helper(); }\n}\nfn helper() {}\n",
        );
        let hot = g.reachable(&[("Cluster", "post_value")], &|fd| fd.name == "emit");
        let labels: Vec<String> = hot.iter().map(|r| g.fns[r.fn_idx].label()).collect();
        assert_eq!(labels, vec!["Cluster::post_value"]);
    }

    #[test]
    fn test_regions_and_macros_are_not_graph_nodes() {
        let g = graph("fn live() { ready!(now); }\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n");
        assert_eq!(g.fns.len(), 1);
        assert!(g.fns[0].calls.is_empty(), "macro invocation is not a call: {:?}", g.fns[0].calls);
    }
}
