//! The driver: walk the workspace, parse every `.rs` file, run the rules
//! in two passes (pass 1 builds shared context such as the `MsgClass`
//! table, pass 2 runs the rules), then apply allow markers and the
//! baseline.

use std::fs;
use std::path::{Path, PathBuf};

use crate::baseline::Baseline;
use crate::rules::{self, Context, Violation};
use crate::source::SourceFile;

/// Directories walked relative to the workspace root.
const WALK_ROOTS: [&str; 3] = ["src", "crates", "tests"];

/// Path fragments that are never linted. The lint crate's own fixtures
/// contain intentional violations; vendored shims and build output are not
/// ours to police.
const EXCLUDED: [&str; 3] = ["vendor/", "target/", "crates/lint/tests/fixtures"];

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Violations not suppressed by a marker and not covered by the baseline.
    pub violations: Vec<Violation>,
    /// Violations suppressed by an allow marker.
    pub allowed: Vec<(Violation, String)>,
    /// Violations covered by the baseline.
    pub baselined: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Shared context from pass 1 (exposed for the self-test).
    pub context: Context,
}

/// Workspace-relative `.rs` files to lint, deterministically ordered.
pub fn collect_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for dir in WALK_ROOTS {
        let base = root.join(dir);
        if base.is_dir() {
            walk(&base, &mut out);
        }
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let unix = path.to_string_lossy().replace('\\', "/");
        if EXCLUDED.iter().any(|x| unix.contains(x)) {
            continue;
        }
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Parse all lintable files under `root`.
pub fn parse_workspace(root: &Path) -> Vec<SourceFile> {
    collect_files(root)
        .iter()
        .filter_map(|p| {
            let rel = p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/");
            fs::read_to_string(p).ok().map(|src| SourceFile::parse(&rel, &src))
        })
        .collect()
}

/// Run the full lint over `root` with an optional baseline. Also reads
/// the machine-readable oracle-count marker out of the workspace's
/// DESIGN.md for the X02 doc-sync check.
pub fn run(root: &Path, baseline: &Baseline) -> Outcome {
    let files = parse_workspace(root);
    let design_count =
        fs::read_to_string(root.join("DESIGN.md")).ok().as_deref().and_then(parse_oracle_count);
    lint_files_with(&files, baseline, design_count)
}

/// The count in a `dsilint: oracle-count = N` marker, if present.
pub fn parse_oracle_count(design: &str) -> Option<usize> {
    let p = design.find("dsilint: oracle-count")?;
    let rest = design[p + "dsilint: oracle-count".len()..].trim_start().strip_prefix('=')?;
    let digits: String = rest.trim_start().chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Core two-pass lint over already-parsed files (fixture tests enter here).
pub fn lint_files(files: &[SourceFile], baseline: &Baseline) -> Outcome {
    lint_files_with(files, baseline, None)
}

/// [`lint_files`] with the DESIGN.md oracle count threaded into pass 1.
pub fn lint_files_with(
    files: &[SourceFile],
    baseline: &Baseline,
    design_oracle_count: Option<usize>,
) -> Outcome {
    let mut context = Context::build(files);
    context.design_oracle_count = design_oracle_count;
    let mut out =
        Outcome { files_scanned: files.len(), context: context.clone(), ..Default::default() };
    for f in files {
        for v in rules::run_all(&context, f) {
            if let Some(reason) = f.allow_reason(v.rule, v.line) {
                out.allowed.push((v, reason.to_string()));
            } else if baseline.covers(&v) {
                out.baselined.push(v);
            } else {
                out.violations.push(v);
            }
        }
    }
    // Deterministic report order.
    let key = |v: &Violation| (v.file.clone(), v.line, v.rule);
    out.violations.sort_by_key(key);
    out.allowed.sort_by_key(|(v, _)| key(v));
    out.baselined.sort_by_key(key);
    out
}

/// Per-rule violation counts in fixed rule-id order (A01 … X02), so two
/// runs over the same tree render byte-identical reports — the map-order
/// nondeterminism D01 polices elsewhere must not live in our own output.
fn rule_counts(outcome: &Outcome) -> Vec<(&'static str, &'static str, usize)> {
    rules::RULE_IDS
        .iter()
        .map(|&(id, slug)| (id, slug, outcome.violations.iter().filter(|v| v.rule == slug).count()))
        .collect()
}

/// Human-readable report, one line per violation, then per-rule counts.
pub fn render_text(outcome: &Outcome) -> String {
    let mut out = String::new();
    for v in &outcome.violations {
        out.push_str(&format!("{}:{}: [{}] {}\n", v.file, v.line, v.rule, v.message));
    }
    for (id, slug, count) in rule_counts(outcome) {
        out.push_str(&format!("  {id} {slug}: {count}\n"));
    }
    out.push_str(&format!(
        "dsilint: {} file(s), {} violation(s), {} allowed, {} baselined\n",
        outcome.files_scanned,
        outcome.violations.len(),
        outcome.allowed.len(),
        outcome.baselined.len()
    ));
    out
}

/// Machine-readable report (uploaded as a CI artifact on failure).
pub fn render_json(outcome: &Outcome) -> String {
    let mut out = String::from("{\n  \"violations\": [");
    for (i, v) in outcome.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{ \"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"excerpt\": {} }}",
            json_str(v.rule),
            json_str(&v.file),
            v.line,
            json_str(&v.message),
            json_str(&v.excerpt),
        ));
    }
    if !outcome.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"by_rule\": {");
    for (i, (id, slug, count)) in rule_counts(outcome).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}: {count}", json_str(&format!("{id} {slug}"))));
    }
    out.push_str(&format!(
        "\n  }},\n  \"files_scanned\": {},\n  \"allowed\": {},\n  \"baselined\": {}\n}}\n",
        outcome.files_scanned,
        outcome.allowed.len(),
        outcome.baselined.len()
    ));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `--fix-markers` scaffolding: insert a standalone
/// `// dsilint: allow(<rule>, TODO: justify)` comment above every
/// unsuppressed violation. The `TODO` reason deliberately does **not**
/// suppress the rule — the scaffold marks where a human must write the
/// real justification.
///
/// Returns `(path, new_content)` pairs; the caller decides whether to
/// write them.
pub fn fix_markers(root: &Path, outcome: &Outcome) -> Vec<(PathBuf, String)> {
    let mut by_file: Vec<(&str, Vec<&Violation>)> = Vec::new();
    for v in &outcome.violations {
        match by_file.iter_mut().find(|(f, _)| *f == v.file) {
            Some((_, vs)) => vs.push(v),
            None => by_file.push((&v.file, vec![v])),
        }
    }
    let mut out = Vec::new();
    for (file, mut vs) in by_file {
        let path = root.join(file);
        let Ok(src) = fs::read_to_string(&path) else { continue };
        let mut lines: Vec<String> = src.split('\n').map(str::to_string).collect();
        // Insert bottom-up so earlier insertions don't shift later lines.
        vs.sort_by_key(|v| std::cmp::Reverse(v.line));
        for v in vs {
            if v.line == 0 || v.line > lines.len() {
                continue;
            }
            let indent: String =
                lines[v.line - 1].chars().take_while(|c| *c == ' ' || *c == '\t').collect();
            lines.insert(
                v.line - 1,
                format!("{indent}// dsilint: allow({}, TODO: justify)", v.rule),
            );
        }
        out.push((path, lines.join("\n")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::D02;

    #[test]
    fn lint_files_applies_markers_and_baseline() {
        let bad = SourceFile::parse("crates/core/src/x.rs", "fn f() { let t = Instant::now(); }\n");
        let allowed = SourceFile::parse(
            "crates/core/src/y.rs",
            "fn f() { let t = Instant::now(); } // dsilint: allow(wall-clock-and-entropy, log only)\n",
        );
        let out = lint_files(&[bad, allowed], &Baseline::default());
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].rule, D02);
        assert_eq!(out.violations[0].file, "crates/core/src/x.rs");
        assert_eq!(out.allowed.len(), 1);

        // The same violation disappears once baselined.
        let b = crate::baseline::from_violations(&out.violations, "2026-08-06");
        let bad2 =
            SourceFile::parse("crates/core/src/x.rs", "fn f() { let t = Instant::now(); }\n");
        let out2 = lint_files(&[bad2], &b);
        assert!(out2.violations.is_empty());
        assert_eq!(out2.baselined.len(), 1);
    }

    #[test]
    fn report_counts_per_rule_in_id_order() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "fn f() { thread_rng(); }\nfn g() { Instant::now(); }\n",
        );
        let out = lint_files(&[f], &Baseline::default());
        let text = render_text(&out);
        assert!(text.contains("  D02 wall-clock-and-entropy: 2"), "{text}");
        assert!(text.contains("  A01 hot-path-alloc: 0"), "{text}");
        // Fixed A01..X02 ordering, no map nondeterminism.
        let a01 = text.find("A01 ").unwrap();
        let d02 = text.find("D02 ").unwrap();
        let x02 = text.find("X02 ").unwrap();
        assert!(a01 < d02 && d02 < x02, "{text}");
        let json = render_json(&out);
        assert!(json.contains("\"D02 wall-clock-and-entropy\": 2"), "{json}");
        assert!(json.contains("\"X02 oracle-table-sync\": 0"), "{json}");
        // The JSON report parses with our own baseline-grade parser.
        assert!(crate::baseline::Json::parse(&json).is_ok());
    }

    #[test]
    fn report_renders_deterministically() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "fn f() { thread_rng(); }\nfn g() { Instant::now(); }\n",
        );
        let out = lint_files(&[f], &Baseline::default());
        let text = render_text(&out);
        let json = render_json(&out);
        assert!(text.contains("crates/core/src/x.rs:1"));
        assert!(json.contains("\"files_scanned\": 1"));
        // Sorted by line.
        let l1 = text.find(":1:").unwrap();
        let l2 = text.find(":2:").unwrap();
        assert!(l1 < l2);
    }
}
