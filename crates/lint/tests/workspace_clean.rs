//! Self-test: the live workspace must pass `dsi-lint --check` with the
//! committed baseline — the same gate CI runs, so a PR that introduces an
//! unannotated violation fails `cargo test -p dsi-lint` locally too.

use std::path::Path;

use dsi_lint::baseline::Baseline;
use dsi_lint::engine;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

#[test]
fn live_workspace_passes_check_with_committed_baseline() {
    let root = workspace_root();
    let baseline_path = root.join("results/lint_baseline.json");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text).expect("committed baseline parses"),
        Err(_) => Baseline::default(),
    };
    let outcome = engine::run(root, &baseline);
    assert!(outcome.files_scanned > 50, "walk found the workspace ({})", outcome.files_scanned);
    assert!(
        outcome.violations.is_empty(),
        "unannotated violations in the committed tree:\n{}",
        engine::render_text(&outcome)
    );
}

#[test]
fn msg_class_context_is_discovered() {
    // X01 is only meaningful if pass 1 actually finds the class table; a
    // refactor that moves/renames the enum must fail here, not silently
    // disable the rule.
    let outcome = engine::run(workspace_root(), &Baseline::default());
    assert_eq!(
        outcome.context.msg_class_file.as_deref(),
        Some("crates/simnet/src/metrics.rs"),
        "MsgClass enum not found where expected"
    );
    // The class table grew to 11 with the aggregate AggPush / AggNotify
    // classes; X01 audits every `[MsgClass; N]` and NUM_CLASSES against
    // exactly this count, so pin it — a variant added without updating the
    // table must fail here, not drift.
    assert_eq!(
        outcome.context.msg_class_variants.len(),
        11,
        "MsgClass variants: {:?}",
        outcome.context.msg_class_variants
    );
}

#[test]
fn oracle_context_is_discovered() {
    // Same guard for X02: pass 1 must find the oracle registry, and the
    // DESIGN.md machine-readable marker must be parsed — otherwise the
    // doc-vs-registry drift check silently disarms.
    let outcome = engine::run(workspace_root(), &Baseline::default());
    assert_eq!(
        outcome.context.oracle_file.as_deref(),
        Some("crates/faultsim/src/oracle.rs"),
        "OracleId enum not found where expected"
    );
    // The registry grew to ten with the post-heal convergence oracle;
    // X02 audits NUM_ORACLES, every `[OracleId; N]` table and the
    // DESIGN.md marker against exactly this count, so pin it.
    assert_eq!(
        outcome.context.oracle_variants.len(),
        10,
        "OracleId variants: {:?}",
        outcome.context.oracle_variants
    );
    assert_eq!(
        outcome.context.design_oracle_count,
        Some(10),
        "DESIGN.md `dsilint: oracle-count` marker not parsed"
    );
}

#[test]
fn hot_set_reaches_beyond_the_entry_file() {
    // A01 is only meaningful if the call graph actually traverses out of
    // cluster.rs: the inline aggregate replica update pulls the sketch
    // and dsp crates into the hot set. A refactor that breaks edge
    // extraction would empty this and silently disable the rule.
    let outcome = engine::run(workspace_root(), &Baseline::default());
    let hot = &outcome.context.hot_fns;
    assert!(
        hot.iter().any(|h| h.file == "crates/core/src/cluster.rs"),
        "no hot functions in cluster.rs"
    );
    assert!(
        hot.iter().any(|h| !h.file.starts_with("crates/core/")),
        "hot set never left crates/core — call-graph traversal broke: {:?}",
        hot.iter().map(|h| h.label.as_str()).collect::<Vec<_>>()
    );
}

#[test]
fn fixtures_and_vendor_are_excluded_from_the_walk() {
    let files = engine::parse_workspace(workspace_root());
    assert!(files.iter().all(|f| !f.path.contains("fixtures")
        && !f.path.contains("vendor/")
        && !f.path.contains("target/")));
    // But the linter does police itself.
    assert!(files.iter().any(|f| f.path == "crates/lint/src/main.rs"));
}
