//! Edge cases for the scrubbing lexer and the per-file model built on
//! it: nested generics, raw identifiers, macro bodies whose *literals*
//! look unbalanced, and `#[cfg(test)]` boundary detection. These are the
//! token shapes most likely to silently desynchronize a text-based
//! linter from the real token stream.

use dsi_lint::callgraph::Graph;
use dsi_lint::lexer::scrub;
use dsi_lint::SourceFile;

// ------------------------------------------------------- nested generics

#[test]
fn nested_generics_survive_scrubbing() {
    // `>>` must not be eaten by the char-literal/lifetime logic, however
    // deep the nesting goes.
    let s = scrub("fn f(v: Vec<Vec<Vec<u8>>>) -> Option<Box<Vec<Vec<u8>>>> { g(v) }");
    assert!(s.code[0].contains("Vec<Vec<Vec<u8>>>"), "{}", s.code[0]);
    assert!(s.code[0].contains("Option<Box<Vec<Vec<u8>>>>"), "{}", s.code[0]);
    assert!(s.comments.is_empty());
}

#[test]
fn nested_generic_impls_resolve_in_the_call_graph() {
    // impl-type extraction strips the generic arguments however nested:
    // `impl Index<Vec<Vec<u8>>>` still files its methods under `Index`.
    let f = SourceFile::parse(
        "crates/core/src/x.rs",
        "struct Index<T> { v: T }\n\
         impl Index<Vec<Vec<u8>>> {\n    fn get(&self) -> usize { 0 }\n}\n",
    );
    let g = Graph::build(&[f]);
    assert!(
        g.fns.iter().any(|d| d.qual.as_deref() == Some("Index") && d.name == "get"),
        "{:?}",
        g.fns.iter().map(|d| d.label()).collect::<Vec<_>>()
    );
}

// -------------------------------------------------------- raw identifiers

#[test]
fn raw_identifiers_are_not_raw_strings() {
    // `r#type` / `r#match`: the `r#` prefix is a raw *identifier*, not an
    // unterminated raw string — everything after it must stay visible.
    let s = scrub("fn r#type(r#match: u32) -> u32 { r#match + 1 }\nlet live = 2;");
    assert!(s.code[0].contains("r#type"), "{}", s.code[0]);
    assert!(s.code[0].contains("r#match + 1"), "{}", s.code[0]);
    assert!(s.code[1].contains("let live = 2;"), "lexer swallowed the next line");
}

#[test]
fn raw_identifier_then_real_raw_string_both_lex() {
    let src = "let r#loop = r#\"thread_rng inside\"#; let after = 1;";
    let s = scrub(src);
    assert!(s.code[0].contains("r#loop"), "{}", s.code[0]);
    assert!(!s.code[0].contains("thread_rng"), "raw string not blanked: {}", s.code[0]);
    assert!(s.code[0].contains("let after = 1;"), "{}", s.code[0]);
}

// ------------------------------------------------ unbalanced-looking macros

#[test]
fn macro_strings_with_unbalanced_braces_do_not_desync_lines() {
    // The literal contents look wildly unbalanced; scrubbing must blank
    // them so brace-matching (test regions, fn spans) stays correct.
    let src = "fn f() {\n    \
         println!(\"}} }} )) {{\");\n    \
         write!(w, \"{{ ( [\")?;\n    \
         assert_eq!(c, ')');\n}\n\
         fn g() { h(); }\n";
    let f = SourceFile::parse("crates/core/src/x.rs", src);
    // Both fns must be found with correct spans despite the literals.
    let g = Graph::build(&[f]);
    let spans: Vec<_> = g.fns.iter().map(|d| (d.name.clone(), d.sig_line, d.body_end)).collect();
    assert!(spans.contains(&("f".to_string(), 1, 5)), "{spans:?}");
    assert!(spans.contains(&("g".to_string(), 6, 6)), "{spans:?}");
}

#[test]
fn statement_window_ignores_brackets_inside_literals() {
    let f = SourceFile::parse(
        "x.rs",
        "fn f() {\n    let v: Vec<u32> = m.values().collect();\n    v.sort_unstable();\n}\n",
    );
    let w = f.statement_window(1);
    assert!(w.contains("sort_unstable"), "{w}");

    // Same shape, but with a `\"}\"` literal between the two statements:
    // the scrubbed close-brace must not end the window early.
    let f = SourceFile::parse(
        "x.rs",
        "fn f() {\n    let v: Vec<u32> = m.values().collect();\n    log(\"}\");\n    v.sort_unstable();\n}\n",
    );
    let w = f.statement_window(1);
    assert!(!w.contains('}'), "literal brace leaked into the window: {w}");
}

// ----------------------------------------------------- cfg(test) boundaries

#[test]
fn cfg_test_region_tracks_nested_braces() {
    let f = SourceFile::parse(
        "x.rs",
        "fn live() {}\n\
         #[cfg(test)]\n\
         mod tests {\n\
             mod inner {\n\
                 fn deep() { if true { nested(); } }\n\
             }\n\
             fn t() {}\n\
         }\n\
         fn after() {}\n",
    );
    assert!(!f.in_test_region(1));
    for line in 2..=8 {
        assert!(f.in_test_region(line), "line {line} should be in the test region");
    }
    assert!(!f.in_test_region(9), "region leaked past the closing brace");
}

#[test]
fn cfg_test_region_is_not_fooled_by_brace_literals() {
    let f = SourceFile::parse(
        "x.rs",
        "#[cfg(test)]\n\
         mod tests {\n\
             const CLOSE: &str = \"}\";\n\
             fn t() {}\n\
         }\n\
         fn live() {}\n",
    );
    assert!(f.in_test_region(4), "literal `}}` ended the region early");
    assert!(!f.in_test_region(6));
}

#[test]
fn cfg_test_attribute_in_a_string_is_not_a_region() {
    let f = SourceFile::parse("x.rs", "fn f() {\n    let s = \"#[cfg(test)]\";\n    g();\n}\n");
    assert!((1..=4).all(|l| !f.in_test_region(l)), "{:?}", f.test_regions);
}
