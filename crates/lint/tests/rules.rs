//! Fixture suite: one positive, one negative and one allow-marker case per
//! rule. Fixtures live under `tests/fixtures/` (never compiled — the
//! engine also excludes that directory from workspace walks) and are
//! parsed under synthetic workspace paths because every rule is
//! path-scoped.

use dsi_lint::baseline::Baseline;
use dsi_lint::engine::{lint_files, lint_files_with};
use dsi_lint::rules::{A01, D01, D02, D03, R01, S01, X01, X02};
use dsi_lint::SourceFile;

/// Parse `tests/fixtures/<name>` as if it lived at `path` in the workspace.
fn fixture(name: &str, path: &str) -> SourceFile {
    let full = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&full).unwrap_or_else(|e| panic!("read {full}: {e}"));
    SourceFile::parse(path, &src)
}

/// Violations (rule, line) and allowed count for one fixture.
fn lint(name: &str, path: &str) -> (Vec<(&'static str, usize)>, usize) {
    let out = lint_files(&[fixture(name, path)], &Baseline::default());
    (out.violations.iter().map(|v| (v.rule, v.line)).collect(), out.allowed.len())
}

// ---------------------------------------------------------------- D01

#[test]
fn d01_positive_flags_hash_order_iteration() {
    let (vs, _) = lint("d01_positive.rs", "crates/core/src/fixture.rs");
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].0, D01);
    assert_eq!(vs[0].1, 13, "the `for … values()` line");
}

#[test]
fn d01_negative_sorted_in_window_passes() {
    let (vs, allowed) = lint("d01_negative.rs", "crates/core/src/fixture.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 0);
}

#[test]
fn d01_allow_marker_suppresses_with_reason() {
    let (vs, allowed) = lint("d01_allowed.rs", "crates/core/src/fixture.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1);
}

#[test]
fn d01_out_of_scope_crate_is_ignored() {
    let (vs, _) = lint("d01_positive.rs", "crates/streamgen/src/fixture.rs");
    assert!(vs.is_empty(), "D01 only covers the deterministic crates: {vs:?}");
}

// ---------------------------------------------------------------- D02

#[test]
fn d02_positive_flags_wall_clock_and_entropy() {
    let (vs, _) = lint("d02_positive.rs", "crates/simnet/src/fixture.rs");
    let rules: Vec<_> = vs.iter().map(|v| v.0).collect();
    assert_eq!(rules, vec![D02, D02], "{vs:?}");
}

#[test]
fn d02_negative_bench_crate_and_strings_are_exempt() {
    let (vs, _) = lint("d02_negative.rs", "crates/bench/src/fixture.rs");
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn d02_allow_marker_suppresses_with_reason() {
    let (vs, allowed) = lint("d02_allowed.rs", "crates/lint/src/fixture.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1);
}

// ---------------------------------------------------------------- D03

#[test]
fn d03_positive_flags_unpaired_metrics_call() {
    let (vs, _) = lint("d03_positive.rs", "crates/core/src/cluster.rs");
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].0, D03);
}

#[test]
fn d03_negative_paired_sites_pass() {
    let (vs, _) = lint("d03_negative.rs", "crates/core/src/cluster.rs");
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn d03_only_applies_to_cluster() {
    let (vs, _) = lint("d03_positive.rs", "crates/core/src/datacenter.rs");
    assert!(vs.is_empty(), "D03 is scoped to the Cluster middleware: {vs:?}");
}

#[test]
fn d03_allow_marker_suppresses_with_reason() {
    let (vs, allowed) = lint("d03_allowed.rs", "crates/core/src/cluster.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1);
}

// ---------------------------------------------------------------- R01

#[test]
fn r01_positive_flags_hot_path_unwrap_and_expect() {
    let (vs, _) = lint("r01_positive.rs", "crates/chord/src/router.rs");
    let rules: Vec<_> = vs.iter().map(|v| v.0).collect();
    assert_eq!(rules, vec![R01, R01], "{vs:?}");
}

#[test]
fn r01_negative_handled_options_and_test_mods_pass() {
    let (vs, _) = lint("r01_negative.rs", "crates/chord/src/router.rs");
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn r01_off_hot_path_is_ignored() {
    let (vs, _) = lint("r01_positive.rs", "crates/chord/src/ring.rs");
    assert!(vs.is_empty(), "R01 covers router/multicast/engine/reliability only: {vs:?}");
}

#[test]
fn r01_allow_marker_suppresses_with_reason() {
    let (vs, allowed) = lint("r01_allowed.rs", "crates/chord/src/multicast.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1);
}

#[test]
fn r01_covers_the_reliability_module() {
    let (vs, _) = lint("r01_reliability_positive.rs", "crates/core/src/reliability.rs");
    let rules: Vec<_> = vs.iter().map(|v| v.0).collect();
    assert_eq!(rules, vec![R01, R01], "{vs:?}");
}

#[test]
fn r01_reliability_allow_marker_suppresses_with_reason() {
    let (vs, allowed) = lint("r01_reliability_allowed.rs", "crates/core/src/reliability.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1);
}

#[test]
fn r01_covers_the_load_ledger() {
    let (vs, _) = lint("r01_loadledger_positive.rs", "crates/core/src/load.rs");
    let rules: Vec<_> = vs.iter().map(|v| v.0).collect();
    assert_eq!(rules, vec![R01, R01], "{vs:?}");
}

#[test]
fn r01_loadledger_allow_marker_suppresses_with_reason() {
    let (vs, allowed) = lint("r01_loadledger_allowed.rs", "crates/core/src/load.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1);
}

#[test]
fn r01_covers_the_summary_store() {
    let (vs, _) = lint("r01_store_positive.rs", "crates/core/src/store.rs");
    let rules: Vec<_> = vs.iter().map(|v| v.0).collect();
    assert_eq!(rules, vec![R01, R01], "{vs:?}");
}

#[test]
fn r01_store_allow_marker_suppresses_with_reason() {
    let (vs, allowed) = lint("r01_store_allowed.rs", "crates/core/src/store.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1);
}

#[test]
fn r01_covers_the_sortable_index() {
    let (vs, _) = lint("r01_sortable_positive.rs", "crates/core/src/sortable.rs");
    let rules: Vec<_> = vs.iter().map(|v| v.0).collect();
    assert_eq!(rules, vec![R01, R01], "{vs:?}");
}

#[test]
fn r01_sortable_allow_marker_suppresses_with_reason() {
    let (vs, allowed) = lint("r01_sortable_allowed.rs", "crates/core/src/sortable.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1);
}

#[test]
fn r01_covers_the_exponential_histogram() {
    let (vs, _) = lint("r01_eh_positive.rs", "crates/sketch/src/eh.rs");
    let rules: Vec<_> = vs.iter().map(|v| v.0).collect();
    assert_eq!(rules, vec![R01, R01], "{vs:?}");
}

#[test]
fn r01_eh_allow_marker_suppresses_with_reason() {
    let (vs, allowed) = lint("r01_eh_allowed.rs", "crates/sketch/src/eh.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1);
}

#[test]
fn r01_covers_the_ecm_sketch() {
    let (vs, _) = lint("r01_ecm_positive.rs", "crates/sketch/src/ecm.rs");
    let rules: Vec<_> = vs.iter().map(|v| v.0).collect();
    assert_eq!(rules, vec![R01, R01], "{vs:?}");
}

#[test]
fn r01_ecm_allow_marker_suppresses_with_reason() {
    let (vs, allowed) = lint("r01_ecm_allowed.rs", "crates/sketch/src/ecm.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1);
}

#[test]
fn r01_covers_the_aggregate_module() {
    let (vs, _) = lint("r01_aggregate_positive.rs", "crates/core/src/aggregate.rs");
    let rules: Vec<_> = vs.iter().map(|v| v.0).collect();
    assert_eq!(rules, vec![R01, R01], "{vs:?}");
}

#[test]
fn r01_aggregate_allow_marker_suppresses_with_reason() {
    let (vs, allowed) = lint("r01_aggregate_allowed.rs", "crates/core/src/aggregate.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1);
}

#[test]
fn d01_covers_the_load_ledger_module() {
    // The ledger lives in `crates/core/`, so the determinism rule audits
    // its map iterations too (the shipped module carries an allow marker
    // for its one commutative count).
    let (vs, _) = lint("d01_positive.rs", "crates/core/src/load.rs");
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].0, D01);
}

// ---------------------------------------------------------------- X01

#[test]
fn x01_positive_flags_stale_constant_and_wildcard() {
    let (vs, _) = lint("x01_positive.rs", "crates/simnet/src/metrics.rs");
    let rules: Vec<_> = vs.iter().map(|v| v.0).collect();
    assert_eq!(rules, vec![X01, X01], "{vs:?}");
}

#[test]
fn x01_negative_consistent_table_passes() {
    let (vs, _) = lint("x01_negative.rs", "crates/simnet/src/metrics.rs");
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn x01_allow_marker_suppresses_with_reason() {
    let (vs, allowed) = lint("x01_allowed.rs", "crates/simnet/src/metrics.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1);
}

// ---------------------------------------------------------------- A01

#[test]
fn a01_positive_flags_derived_clone_reached_from_post_value() {
    // The PR-9 negative control: a derived-Clone ExpHistogram cloned on
    // the tick, two call-graph hops below the entry point.
    let (vs, _) = lint("a01_positive.rs", "crates/core/src/cluster.rs");
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].0, A01);
}

#[test]
fn a01_positive_witness_chain_names_the_entry_point() {
    let out = lint_files(
        &[fixture("a01_positive.rs", "crates/core/src/cluster.rs")],
        &Baseline::default(),
    );
    assert_eq!(out.violations.len(), 1);
    let msg = &out.violations[0].message;
    assert!(msg.contains("Cluster::post_value"), "witness chain missing from: {msg}");
    assert!(msg.contains("`.clone()`"), "token missing from: {msg}");
}

#[test]
fn a01_negative_capacity_preserving_counterpart_passes() {
    // Hand-written capacity-preserving Clone plus clone_from on the hot
    // path: the allocating fns exist but are unreachable from the
    // entries, so the static pass stays quiet.
    let (vs, allowed) = lint("a01_negative.rs", "crates/core/src/cluster.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 0);
}

#[test]
fn a01_allow_marker_and_cold_boundary_suppress() {
    // The statement marker is counted as allowed; the fn-level cold
    // boundary excludes the emission helper without an allowed record.
    let (vs, allowed) = lint("a01_allowed.rs", "crates/core/src/cluster.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1);
}

#[test]
fn a01_outside_graph_crates_is_ignored() {
    // bench is not a runtime crate: no call-graph nodes, no hot set.
    let (vs, _) = lint("a01_positive.rs", "crates/bench/src/fixture.rs");
    assert!(vs.is_empty(), "A01 covers the runtime graph crates only: {vs:?}");
}

// ---------------------------------------------------------------- S01

#[test]
fn s01_positive_flags_unresolved_send_and_double_charge() {
    let (vs, _) = lint("s01_positive.rs", "crates/core/src/cluster.rs");
    let rules: Vec<_> = vs.iter().map(|v| v.0).collect();
    assert_eq!(rules, vec![S01, S01], "{vs:?}");
}

#[test]
fn s01_negative_resolved_sends_pass() {
    let (vs, _) = lint("s01_negative.rs", "crates/core/src/cluster.rs");
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn s01_outside_core_is_ignored() {
    let (vs, _) = lint("s01_positive.rs", "crates/simnet/src/engine.rs");
    assert!(vs.is_empty(), "S01 is scoped to crates/core: {vs:?}");
}

#[test]
fn s01_allow_marker_suppresses_with_reason() {
    let (vs, allowed) = lint("s01_allowed.rs", "crates/core/src/cluster.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1);
}

// ---------------------------------------------------------------- X02

#[test]
fn x02_positive_flags_stale_constant_and_wildcard() {
    let (vs, _) = lint("x02_positive.rs", "crates/faultsim/src/oracle.rs");
    let rules: Vec<_> = vs.iter().map(|v| v.0).collect();
    assert_eq!(rules, vec![X02, X02], "{vs:?}");
}

#[test]
fn x02_negative_consistent_registry_passes() {
    // Includes a `[OracleId; NUM_ORACLES]` table: spelling the length as
    // the audited constant is in sync by construction.
    let (vs, _) = lint("x02_negative.rs", "crates/faultsim/src/oracle.rs");
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn x02_allow_marker_suppresses_with_reason() {
    let (vs, allowed) = lint("x02_allowed.rs", "crates/faultsim/src/oracle.rs");
    assert!(vs.is_empty(), "{vs:?}");
    assert_eq!(allowed, 1);
}

#[test]
fn x02_growth_positive_flags_every_stale_nine_oracle_artifact() {
    // The tenth-oracle growth scenario: a variant added without touching
    // the constant, a legacy literal-length table, or the slug dispatch.
    // All three must be flagged, not just the first.
    let (vs, _) = lint("x02_growth_positive.rs", "crates/faultsim/src/oracle.rs");
    let rules: Vec<_> = vs.iter().map(|v| v.0).collect();
    assert_eq!(rules, vec![X02, X02, X02], "{vs:?}");
}

#[test]
fn x02_growth_negative_extended_registry_passes() {
    let (vs, _) = lint("x02_growth_negative.rs", "crates/faultsim/src/oracle.rs");
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn x02_growth_marker_must_advance_with_the_registry() {
    // A ten-variant registry against a DESIGN.md marker still saying 9
    // (doc left behind) and one saying 10 (doc kept up).
    let f = fixture("x02_growth_negative.rs", "crates/faultsim/src/oracle.rs");
    let out = lint_files_with(&[f], &Baseline::default(), Some(9));
    assert_eq!(out.violations.len(), 1, "{:?}", out.violations);
    assert_eq!(out.violations[0].rule, X02);
    assert!(out.violations[0].message.contains("DESIGN.md advertises 9 oracles"));

    let f = fixture("x02_growth_negative.rs", "crates/faultsim/src/oracle.rs");
    let out = lint_files_with(&[f], &Baseline::default(), Some(10));
    assert!(out.violations.is_empty(), "{:?}", out.violations);
}

#[test]
fn x02_design_marker_drift_is_flagged_at_the_enum() {
    let f = fixture("x02_negative.rs", "crates/faultsim/src/oracle.rs");
    let out = lint_files_with(&[f], &Baseline::default(), Some(4));
    assert_eq!(out.violations.len(), 1, "{:?}", out.violations);
    assert_eq!(out.violations[0].rule, X02);
    assert!(out.violations[0].message.contains("DESIGN.md advertises 4 oracles"));

    let f = fixture("x02_negative.rs", "crates/faultsim/src/oracle.rs");
    let out = lint_files_with(&[f], &Baseline::default(), Some(3));
    assert!(out.violations.is_empty(), "{:?}", out.violations);
}

// ------------------------------------------------------ marker pressure

#[test]
fn todo_reason_markers_do_not_suppress() {
    // The --fix-markers scaffolding inserts TODO reasons; they must keep
    // the violation alive until a human writes the real justification.
    let f = SourceFile::parse(
        "crates/chord/src/router.rs",
        "pub fn f(v: &[u64]) -> u64 {\n    // dsilint: allow(hot-path-unwrap, TODO: justify)\n    *v.first().unwrap()\n}\n",
    );
    let out = lint_files(&[f], &Baseline::default());
    assert_eq!(out.violations.len(), 1);
    assert_eq!(out.violations[0].rule, R01);
}
