// X01 negative: constant, array lengths and match arms all agree with the
// variant count, with no wildcard.
pub enum MsgClass {
    Query,
    Response,
    Summary,
}

pub const NUM_CLASSES: usize = 3;

pub const ZEROS: [MsgClass; 3] = [MsgClass::Query, MsgClass::Response, MsgClass::Summary];

pub fn name(c: MsgClass) -> &'static str {
    match c {
        MsgClass::Query => "query",
        MsgClass::Response | MsgClass::Summary => "other",
    }
}
