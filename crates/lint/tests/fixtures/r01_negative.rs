// R01 negative: hot path handles its Options; unwraps inside #[cfg(test)]
// modules are exempt.
pub fn next_hop(fingers: &[u64], key: u64) -> Option<u64> {
    fingers.iter().copied().find(|&f| f <= key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_hop() {
        assert_eq!(next_hop(&[1, 2], 2).unwrap(), 1);
    }
}
