// R01 allow-marker on the ECM-sketch path: the panic site names the
// invariant making it unreachable.
pub fn row_min(estimates: &[u64], depth: usize) -> u64 {
    // dsilint: allow(hot-path-unwrap, with_dims rejects depth == 0)
    let min = estimates.iter().take(depth).min().expect("depth rows exist");
    *min
}
