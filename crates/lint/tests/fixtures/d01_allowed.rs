// D01 allow-marker: order-insensitive reduction, justified in place.
use std::collections::HashMap;

pub struct Registry {
    queries: HashMap<u64, Vec<u32>>,
}

impl Registry {
    pub fn total(&self) -> usize {
        // dsilint: allow(unordered-iter, commutative sum over all queries)
        self.queries.values().map(|v| v.len()).sum()
    }
}
