//! A01 allow-marker fixture: one statement-level marker inside a hot
//! function (counted as allowed), and one fn-level cold boundary on the
//! emission helper (excluded from the hot set entirely — its allocation
//! produces neither a violation nor an allowed record).

pub struct Cluster {
    out: Vec<u64>,
}

impl Cluster {
    pub fn ingest_batch(&mut self, vs: &[u64]) {
        // dsilint: allow(hot-path-alloc, capacity-0 Vec is heap-free; only emissions grow it)
        let mut emitted = Vec::new();
        for v in vs {
            emitted.push(*v);
        }
        self.emit(&emitted);
    }

    // dsilint: allow(hot-path-alloc, cold boundary: emission is the rare path and owns its buffers)
    fn emit(&mut self, vs: &[u64]) {
        self.out = vs.to_vec();
    }
}
