// D01 negative: the collected keys are sorted in the statement window, so
// hash order never escapes.
use std::collections::HashMap;

pub struct Registry {
    queries: HashMap<u64, String>,
}

impl Registry {
    pub fn snapshot(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.queries.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}
