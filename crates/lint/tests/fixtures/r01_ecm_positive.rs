// R01 positive: bare unwrap/expect on the ECM-sketch row-min estimate
// path (linted under `crates/sketch/src/ecm.rs`).
pub fn row_min(estimates: &[u64], depth: usize) -> u64 {
    let first = estimates.get(0).unwrap();
    let min = estimates.iter().take(depth).min().expect("depth rows exist");
    first.min(*min)
}
