// R01 positive: bare unwrap/expect on the sortable-index scan path
// (linted under `crates/core/src/sortable.rs`).
pub fn merge_last_two(runs: &mut Vec<Vec<u64>>) -> Vec<u64> {
    let a = runs.pop().unwrap();
    let b = runs.last().expect("at least one run left");
    a.iter().chain(b.iter()).copied().collect()
}
