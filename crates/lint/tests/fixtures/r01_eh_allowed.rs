// R01 allow-marker on the exponential-histogram path: the panic site
// names the invariant making it unreachable.
pub fn newest_bucket(buckets: &[(u64, u64)]) -> (u64, u64) {
    // dsilint: allow(hot-path-unwrap, insert always seeds a first bucket)
    let last = buckets.last().expect("histogram holds at least one bucket");
    (buckets[0].0, last.1)
}
