// R01 allow-marker on the sortable-index path: the panic site names the
// invariant making it unreachable.
pub fn merge_last_two(runs: &mut Vec<Vec<u64>>) -> Vec<u64> {
    // dsilint: allow(hot-path-unwrap, compact() only merges when two runs exist)
    let a = runs.pop().expect("compact() only merges when two runs exist");
    let b = runs.last().cloned().unwrap_or_default();
    a.iter().chain(b.iter()).copied().collect()
}
