//! A01 negative fixture: the capacity-preserving counterpart to
//! `a01_positive.rs`. The hand-written `Clone` impl allocates with the
//! source's capacity, but nothing on the hot path calls it: the tick
//! reuses the replica's storage via `clone_from`, and the allocating
//! constructor and snapshot API are unreachable from the entry points.

pub struct ExpHistogram {
    buckets: Vec<u64>,
}

impl ExpHistogram {
    pub fn with_dims(cap: usize) -> Self {
        Self { buckets: Vec::with_capacity(cap) }
    }
}

impl Clone for ExpHistogram {
    fn clone(&self) -> Self {
        let mut buckets = Vec::with_capacity(self.buckets.capacity());
        buckets.extend_from_slice(&self.buckets);
        Self { buckets }
    }
}

pub struct Cluster {
    last: ExpHistogram,
    scratch: ExpHistogram,
}

impl Cluster {
    pub fn post_value(&mut self, v: f64) {
        self.scratch.buckets[0] = v as u64;
        self.store_replica();
    }

    fn store_replica(&mut self) {
        self.last.buckets.clone_from(&self.scratch.buckets);
    }

    pub fn snapshot(&self) -> Vec<u64> {
        self.scratch.buckets.to_vec()
    }
}
