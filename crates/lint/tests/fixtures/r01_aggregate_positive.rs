// R01 positive: bare unwrap/expect on the per-window aggregate
// maintenance path (linted under `crates/core/src/aggregate.rs`).
pub fn latest_notification(rounds: &[(u64, f64)]) -> (u64, f64) {
    let newest = rounds.last().unwrap();
    let oldest = rounds.first().expect("a posted query notifies at least once");
    (newest.0, oldest.1)
}
