//! S01 positive fixture: one send site with no ReliabilityState
//! resolution anywhere before it in its function (the fault plan never
//! judged the message), and one statement that resolves twice for a
//! single wire message (double charge).

pub struct Metrics;

impl Metrics {
    pub fn record_message(&mut self, _class: u8, _hops: u32) {}
}

pub struct Cluster {
    metrics: Metrics,
}

impl Cluster {
    fn unresolved_send(&mut self, hops: u32) {
        self.metrics.record_message(0, hops);
        self.tracer.single(0, hops);
    }

    fn double_charge(&mut self, a: u8, b: u8) {
        let ok = self.resolve_send(a, 0, 1) && self.resolve_send(b, 1, 0);
        if ok {
            self.metrics.record_message(0, 1);
            self.tracer.single(0, 1);
        }
    }

    fn resolve_send(&mut self, _class: u8, _from: u64, _to: u64) -> bool {
        true
    }
}
