//! S01 allow-marker fixture: an unresolved send justified with a reason —
//! a bootstrap-time probe that runs before the fault plan is armed.

pub struct Metrics;

impl Metrics {
    pub fn record_message(&mut self, _class: u8, _hops: u32) {}
}

pub struct Cluster {
    metrics: Metrics,
}

impl Cluster {
    fn bootstrap_probe(&mut self) {
        // dsilint: allow(charge-once-at-send, join-time probe runs before the fault plan is armed and is never on the faulted path)
        self.metrics.record_message(3, 1);
        self.tracer.single(3, 1);
    }
}
