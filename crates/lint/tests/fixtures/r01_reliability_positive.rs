// R01 positive: bare unwrap/expect on the reliability delivery path
// (linted under `crates/core/src/reliability.rs`).
pub fn retry_budget(budgets: &[u32], class: usize) -> u32 {
    let base = budgets.first().unwrap();
    let per_class = budgets.get(class).expect("class budget configured");
    (*base).max(*per_class)
}
