// D03 negative: every Metrics call has its paired Tracer call inside the
// statement window, so audit(trace) == Metrics stays provable.
impl Cluster {
    fn on_query(&mut self, path: &[u64]) {
        if self.measuring {
            self.metrics.record_hops(MsgClass::Query, (path.len() - 1) as u32);
            self.tracer.single(MsgClass::Query, path);
        }
    }

    fn on_response(&mut self, path: &[u64]) {
        // Routing through the helper pairs metrics and trace internally,
        // and the send is charged once through the reliability judge.
        if self.resolve_send(MsgClass::Response, path[0], path[1]) {
            self.record_route(MsgClass::Response, MsgClass::ResponseTransit, path, true);
            if self.measuring {
                self.metrics.record_message(MsgClass::Response, path[0]);
            }
        }
    }
}
