// R01 allow-marker on the aggregate maintenance path: the panic site
// names the invariant making it unreachable.
pub fn latest_notification(rounds: &[(u64, f64)]) -> (u64, f64) {
    // dsilint: allow(hot-path-unwrap, post_aggregate emits the first round synchronously)
    let newest = rounds.last().expect("a posted query notifies at least once");
    (newest.0, newest.1)
}
