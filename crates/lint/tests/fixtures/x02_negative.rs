//! X02 negative fixture: a consistent oracle registry — the constant,
//! a literal-length table, a const-length table and the dispatch match
//! all agree with the enum's variant count.

pub enum OracleId {
    NoFalseDismissal,
    RoutingTermination,
    Purge,
}

pub const NUM_ORACLES: usize = 3;

pub const ORACLES: [OracleId; NUM_ORACLES] =
    [OracleId::NoFalseDismissal, OracleId::RoutingTermination, OracleId::Purge];

pub const WEIGHTS: [OracleId; 3] =
    [OracleId::NoFalseDismissal, OracleId::RoutingTermination, OracleId::Purge];

pub fn slug(o: OracleId) -> &'static str {
    match o {
        OracleId::NoFalseDismissal => "no-false-dismissal",
        OracleId::RoutingTermination => "routing-termination",
        OracleId::Purge => "purge",
    }
}
