// D02 negative: the same tokens are fine inside crates/bench (linted under
// `crates/bench/src/fixture.rs`), and mentions inside strings or comments
// never count: "Instant::now" / thread_rng in this comment is invisible.
pub fn bench_stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub const DOC: &str = "SystemTime::now is only a string here";
