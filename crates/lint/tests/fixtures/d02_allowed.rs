// D02 allow-marker: a justified wall-clock read outside crates/bench.
pub fn wall_clock_days() -> u64 {
    // dsilint: allow(wall-clock-and-entropy, build tool stamps dates, not simulation state)
    let secs = std::time::SystemTime::now();
    let _ = secs;
    0
}
