// D03 positive: a Metrics call in Cluster with no paired Tracer call
// anywhere in the surrounding statement window (linted under
// `crates/core/src/cluster.rs`).
impl Cluster {
    fn on_query(&mut self, path: &[u64]) {
        if self.measuring {
            self.metrics.record_hops(MsgClass::Query, (path.len() - 1) as u32);
        }
        self.deliver(path);
    }

    fn deliver(&mut self, _path: &[u64]) {}
    fn unrelated_a(&self) {}
    fn unrelated_b(&self) {}
    fn unrelated_c(&self) {}
    fn unrelated_d(&self) {}
    fn unrelated_e(&self) {}
}
