// D01 positive: hash-order iteration feeding an output vector, no sort in
// the statement window. Linted under the synthetic path
// `crates/core/src/fixture.rs` (fixtures are never compiled).
use std::collections::HashMap;

pub struct Registry {
    queries: HashMap<u64, String>,
}

impl Registry {
    pub fn broadcast(&self) -> Vec<String> {
        let mut out = Vec::new();
        for q in self.queries.values() {
            out.push(q.clone());
        }
        out
    }
}
