// R01 positive: bare unwrap/expect on the routing hot path (linted under
// `crates/chord/src/router.rs`).
pub fn next_hop(fingers: &[u64], key: u64) -> u64 {
    let first = fingers.first().unwrap();
    let best = fingers.iter().find(|&&f| f <= key).expect("some finger covers");
    *first.max(best)
}
