// D02 positive: wall-clock and ambient entropy in a simulation crate
// (linted under `crates/simnet/src/fixture.rs`).
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn jitter() -> f64 {
    rand::random::<f64>()
}
