//! X02 growth-negative fixture: the ten-oracle registry extended
//! correctly — constant, const-length table, literal-length table and
//! the slug dispatch all carry the new post-heal convergence variant.

pub enum OracleId {
    NoFalseDismissal,
    RoutingTermination,
    ReplicaPlacement,
    MetricsConservation,
    Purge,
    TraceConformance,
    EventualCompleteness,
    LoadBalance,
    SketchAccuracy,
    PostHealConvergence,
}

pub const NUM_ORACLES: usize = 10;

pub const ORACLES: [OracleId; NUM_ORACLES] = [
    OracleId::NoFalseDismissal,
    OracleId::RoutingTermination,
    OracleId::ReplicaPlacement,
    OracleId::MetricsConservation,
    OracleId::Purge,
    OracleId::TraceConformance,
    OracleId::EventualCompleteness,
    OracleId::LoadBalance,
    OracleId::SketchAccuracy,
    OracleId::PostHealConvergence,
];

pub const WEIGHTS: [OracleId; 10] = [
    OracleId::NoFalseDismissal,
    OracleId::RoutingTermination,
    OracleId::ReplicaPlacement,
    OracleId::MetricsConservation,
    OracleId::Purge,
    OracleId::TraceConformance,
    OracleId::EventualCompleteness,
    OracleId::LoadBalance,
    OracleId::SketchAccuracy,
    OracleId::PostHealConvergence,
];

pub fn slug(o: OracleId) -> &'static str {
    match o {
        OracleId::NoFalseDismissal => "no-false-dismissal",
        OracleId::RoutingTermination => "routing-termination",
        OracleId::ReplicaPlacement => "replica-placement",
        OracleId::MetricsConservation => "metrics-conservation",
        OracleId::Purge => "purge",
        OracleId::TraceConformance => "trace-conformance",
        OracleId::EventualCompleteness => "eventual-completeness",
        OracleId::LoadBalance => "load-balance",
        OracleId::SketchAccuracy => "sketch-accuracy",
        OracleId::PostHealConvergence => "post-heal-convergence",
    }
}
