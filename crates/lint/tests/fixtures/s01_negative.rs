//! S01 negative fixture: every send resolves through ReliabilityState
//! exactly once before its bookkeeping line — via the judge itself, or
//! via the lossless-path dispatch guard.

pub struct Metrics;

impl Metrics {
    pub fn record_message(&mut self, _class: u8, _hops: u32) {}
}

pub struct Cluster {
    metrics: Metrics,
    reliability: Option<u8>,
}

impl Cluster {
    fn send_notify(&mut self, to: u64) {
        if self.resolve_send(2, 0, to) {
            self.metrics.record_message(2, 1);
            self.tracer.single(2, to);
        }
    }

    fn local_delivery(&mut self) {
        if self.reliability.is_none() {
            self.metrics.record_message(1, 0);
            self.tracer.single(1, 0);
        }
    }

    fn resolve_send(&mut self, _class: u8, _from: u64, _to: u64) -> bool {
        true
    }
}
