// D03 allow-marker: a Metrics-only site justified in place (e.g. an
// aggregate counter with no per-message trace record by design).
impl Cluster {
    fn account(&mut self, n: u32) {
        // dsilint: allow(metrics-trace-pairing, aggregate counter, no per-message record exists)
        self.metrics.record_hops(MsgClass::Maintenance, n);
    }
}
