// R01 allow-marker: the panic site names the invariant making it
// unreachable.
pub fn owner(ring: &[u64]) -> u64 {
    // dsilint: allow(hot-path-unwrap, ring is non-empty for any routed message)
    *ring.first().expect("non-empty ring")
}
