//! X02 positive fixture: a stale `NUM_ORACLES` and a wildcard arm in an
//! `OracleId` dispatch match (swallows future oracles silently).

pub enum OracleId {
    NoFalseDismissal,
    RoutingTermination,
    Purge,
}

pub const NUM_ORACLES: usize = 2;

pub fn slug(o: OracleId) -> &'static str {
    match o {
        OracleId::NoFalseDismissal => "no-false-dismissal",
        _ => "other",
    }
}
