//! A01 positive fixture: the PR-9 bug shape. `ExpHistogram` derives
//! `Clone`, and the steady-state tick clones it into the replica slot —
//! the derived impl rebuilds `buckets` with whatever capacity `Vec`'s
//! own clone picks, so every tick allocates. The static pass must flag
//! the clone in `store_replica` as hot via `Cluster::post_value`.

#[derive(Clone)]
pub struct ExpHistogram {
    buckets: Vec<u64>,
}

pub struct Cluster {
    last: Option<ExpHistogram>,
    scratch: ExpHistogram,
}

impl Cluster {
    pub fn post_value(&mut self, v: f64) {
        self.scratch.buckets[0] = v as u64;
        self.store_replica();
    }

    fn store_replica(&mut self) {
        self.last = Some(self.scratch.clone());
    }
}
