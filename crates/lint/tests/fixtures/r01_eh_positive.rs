// R01 positive: bare unwrap/expect on the exponential-histogram insert
// path (linted under `crates/sketch/src/eh.rs`).
pub fn newest_bucket(buckets: &[(u64, u64)]) -> (u64, u64) {
    let first = buckets.first().unwrap();
    let last = buckets.last().expect("histogram holds at least one bucket");
    (first.0, last.1)
}
