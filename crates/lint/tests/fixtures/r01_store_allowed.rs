// R01 allow-marker on the summary-store path: the panic site names the
// invariant making it unreachable.
pub fn corner_span(offsets: &[u32], pos: usize) -> (usize, usize) {
    // dsilint: allow(hot-path-unwrap, offsets always holds len+1 entries)
    let end = offsets.get(pos + 1).expect("offsets has len+1 entries");
    (offsets[pos] as usize, *end as usize)
}
