// R01 allow-marker on the load-ledger path: the panic site names the
// invariant making it unreachable.
pub fn round_ratio(messages: &[u64]) -> f64 {
    // dsilint: allow(hot-path-unwrap, record() never stores an empty round)
    let max = messages.iter().max().expect("non-empty round");
    *max as f64 / (messages.iter().sum::<u64>() as f64 / messages.len() as f64)
}
