// R01 allow-marker on the reliability path: the panic site names the
// invariant making it unreachable.
pub fn retry_budget(budgets: &[u32], class: usize) -> u32 {
    // dsilint: allow(hot-path-unwrap, class comes from MsgClass::index and is always in range)
    *budgets.get(class).expect("in-range class index")
}
