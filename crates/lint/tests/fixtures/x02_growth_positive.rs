//! X02 growth-positive fixture: the registry just grew a tenth variant
//! (post-heal convergence) but the constant, a literal-length table and
//! the slug dispatch were left at nine — the exact drift X02 exists to
//! catch when an oracle is added.

pub enum OracleId {
    NoFalseDismissal,
    RoutingTermination,
    ReplicaPlacement,
    MetricsConservation,
    Purge,
    TraceConformance,
    EventualCompleteness,
    LoadBalance,
    SketchAccuracy,
    PostHealConvergence,
}

pub const NUM_ORACLES: usize = 9;

pub const LEGACY: [OracleId; 9] = [
    OracleId::NoFalseDismissal,
    OracleId::RoutingTermination,
    OracleId::ReplicaPlacement,
    OracleId::MetricsConservation,
    OracleId::Purge,
    OracleId::TraceConformance,
    OracleId::EventualCompleteness,
    OracleId::LoadBalance,
    OracleId::SketchAccuracy,
];

pub fn slug(o: OracleId) -> &'static str {
    match o {
        OracleId::NoFalseDismissal => "no-false-dismissal",
        OracleId::RoutingTermination => "routing-termination",
        OracleId::ReplicaPlacement => "replica-placement",
        OracleId::MetricsConservation => "metrics-conservation",
        OracleId::Purge => "purge",
        OracleId::TraceConformance => "trace-conformance",
        OracleId::EventualCompleteness => "eventual-completeness",
        OracleId::LoadBalance => "load-balance",
        _ => "sketch-accuracy",
    }
}
