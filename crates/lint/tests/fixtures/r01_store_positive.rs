// R01 positive: bare unwrap/expect on the SoA summary-store candidate path
// (linted under `crates/core/src/store.rs`).
pub fn corner_span(offsets: &[u32], pos: usize) -> (usize, usize) {
    let start = offsets.get(pos).unwrap();
    let end = offsets.get(pos + 1).expect("offsets has len+1 entries");
    (*start as usize, *end as usize)
}
