// X01 allow-marker: a deliberately partial match justified in place.
pub enum MsgClass {
    Query,
    Response,
    Summary,
}

pub const NUM_CLASSES: usize = 3;

pub fn is_query(c: MsgClass) -> bool {
    match c {
        MsgClass::Query => true,
        // dsilint: allow(class-table, predicate only distinguishes queries)
        _ => false,
    }
}
