// X01 positive: the class table drifted — NUM_CLASSES disagrees with the
// variant count and a match hides future variants behind a wildcard.
pub enum MsgClass {
    Query,
    Response,
    Summary,
}

pub const NUM_CLASSES: usize = 2;

pub fn name(c: MsgClass) -> &'static str {
    match c {
        MsgClass::Query => "query",
        _ => "other",
    }
}
