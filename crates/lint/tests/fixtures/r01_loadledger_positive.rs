// R01 positive: bare unwrap/expect on the load-ledger accounting path
// (linted under `crates/core/src/load.rs`).
pub fn round_ratio(messages: &[u64]) -> f64 {
    let max = messages.iter().max().unwrap();
    let mean = messages.iter().sum::<u64>().checked_div(messages.len() as u64);
    *max as f64 / mean.expect("non-empty round") as f64
}
