//! X02 allow-marker fixture: an intentionally sparse predicate match
//! over the registry, justified — new oracles default to the `false`
//! arm by design.

pub enum OracleId {
    NoFalseDismissal,
    RoutingTermination,
    Purge,
}

pub const NUM_ORACLES: usize = 3;

pub fn is_coverage(o: OracleId) -> bool {
    match o {
        OracleId::NoFalseDismissal => true,
        // dsilint: allow(oracle-table-sync, coverage predicate is intentionally sparse; new oracles default to non-coverage)
        _ => false,
    }
}
