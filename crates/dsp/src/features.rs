//! Stream summaries: truncated DFT feature vectors over normalized sliding
//! windows (§III-C) and the lower-bounding distance that makes the
//! distributed index free of false dismissals (Eq. 9).

use crate::complex::Complex64;
use crate::dft::dft;
use crate::normalize::{normalize, Normalization, SlidingStats};
use crate::sliding::SlidingDft;
use crate::window::SlidingWindow;
use serde::{Deserialize, Serialize};

/// A stream summary: the first `k` non-trivial unitary DFT coefficients of
/// the normalized current window.
///
/// * For [`Normalization::ZNorm`] the DC coefficient is identically zero, so
///   the vector holds bins `1 ..= k`.
/// * For [`Normalization::UnitNorm`] it holds bins `0 .. k`.
///
/// Because the normalized window lies on the unit hyper-sphere, every
/// coefficient satisfies `|X_f| <= 1`, hence
/// [`FeatureVector::first_real`] in `[-1, +1]` — the domain of the Eq. 6 key
/// mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    coeffs: Vec<Complex64>,
    mode: Normalization,
}

impl FeatureVector {
    /// Wraps already-computed normalized coefficients.
    pub fn new(coeffs: Vec<Complex64>, mode: Normalization) -> Self {
        FeatureVector { coeffs, mode }
    }

    /// The retained coefficients.
    #[inline]
    pub fn coeffs(&self) -> &[Complex64] {
        &self.coeffs
    }

    /// Number of retained coefficients `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.coeffs.len()
    }

    /// The normalization the source window used.
    #[inline]
    pub fn mode(&self) -> Normalization {
        self.mode
    }

    /// Real part of the first retained coefficient — the scalar the paper
    /// hashes onto the Chord ring (§IV-B). Guaranteed in `[-1, +1]` up to
    /// rounding; clamped defensively.
    #[inline]
    pub fn first_real(&self) -> f64 {
        self.coeffs.first().map_or(0.0, |c| c.re.clamp(-1.0, 1.0))
    }

    /// Flattens into a real vector (re/im interleaved) — the 2k-dimensional
    /// feature space in which MBRs live.
    pub fn to_reals(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.coeffs.len() * 2);
        self.write_reals(&mut out);
        out
    }

    /// Allocation-free variant of [`FeatureVector::to_reals`]: clears `out`
    /// and fills it with the interleaved re/im components, reusing its
    /// capacity. Hot loops that convert many features keep one scratch
    /// buffer instead of allocating per feature.
    pub fn write_reals(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.coeffs.len() * 2);
        for c in &self.coeffs {
            out.push(c.re);
            out.push(c.im);
        }
    }

    /// Overwrites this vector's contents in place, reusing the coefficient
    /// buffer's capacity. The zero-allocation ingest path keeps one
    /// `FeatureVector` per stream (`last_feature`) and refreshes it with
    /// this instead of allocating a fresh vector every tick.
    pub fn overwrite(&mut self, coeffs: &[Complex64], mode: Normalization) {
        self.coeffs.clear();
        self.coeffs.extend_from_slice(coeffs);
        self.mode = mode;
    }

    /// Lower-bounding feature-space distance (Eq. 9).
    ///
    /// For a real signal every retained bin `f >= 1` has a conjugate mirror
    /// `X_{w-f}`, so its squared difference counts twice toward the full
    /// signal distance; the DC bin (present only under
    /// [`Normalization::UnitNorm`]) counts once. The result never exceeds
    /// the Euclidean distance between the underlying normalized windows.
    ///
    /// # Panics
    /// Panics if the two vectors disagree in length or normalization.
    pub fn distance(&self, other: &FeatureVector) -> f64 {
        assert_eq!(self.coeffs.len(), other.coeffs.len(), "feature dimensionality mismatch");
        assert_eq!(self.mode, other.mode, "feature normalization mismatch");
        let mut acc = 0.0;
        for (f, (a, b)) in self.coeffs.iter().zip(other.coeffs.iter()).enumerate() {
            let d = (*a - *b).norm_sqr();
            let has_mirror = match self.mode {
                Normalization::ZNorm => true, // bins 1..=k, all mirrored
                Normalization::UnitNorm => f > 0,
            };
            acc += if has_mirror { 2.0 * d } else { d };
        }
        acc.sqrt()
    }
}

/// Reusable buffers for the allocation-free summarization path.
///
/// One scratch per ingest worker is enough: [`FeatureExtractor::update_scratch`]
/// writes the normalized coefficient prefix into `coeffs` and its interleaved
/// re/im flattening into `reals`, reusing both buffers' capacity. After the
/// first warm tick neither grows again (the coefficient count `k` is fixed
/// per stream), so steady-state ingest performs no heap allocation per item.
#[derive(Debug, Clone, Default)]
pub struct SummaryScratch {
    /// Normalized coefficient prefix — the [`FeatureVector`] payload.
    pub coeffs: Vec<Complex64>,
    /// Interleaved re/im flattening of `coeffs` — the 2k-dimensional point.
    pub reals: Vec<f64>,
}

/// Batch feature extraction: normalizes a full window and takes the DFT
/// prefix. Reference implementation for [`FeatureExtractor`].
pub fn extract_features(window: &[f64], mode: Normalization, k: usize) -> FeatureVector {
    let normalized = normalize(window, mode);
    let spectrum = dft(&normalized);
    let coeffs = match mode {
        Normalization::ZNorm => spectrum.iter().skip(1).take(k).copied().collect(),
        Normalization::UnitNorm => spectrum.iter().take(k).copied().collect(),
    };
    FeatureVector::new(coeffs, mode)
}

/// Incremental per-stream feature extraction pipeline.
///
/// Maintains the raw sliding DFT (Eq. 5) plus sliding sum/sum-of-squares;
/// the normalized coefficients are derived in O(k) per arriving value because
/// normalization is an affine map whose effect on the spectrum is a scalar
/// division (plus zeroing the DC bin for z-normalization).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureExtractor {
    window: SlidingWindow,
    raw: SlidingDft,
    stats: SlidingStats,
    mode: Normalization,
    k: usize,
}

impl FeatureExtractor {
    /// Creates an extractor over windows of length `window_len`, retaining
    /// `k` non-trivial coefficients.
    ///
    /// # Panics
    /// Panics if `k == 0` or the retained bins would exceed the window.
    pub fn new(window_len: usize, k: usize, mode: Normalization) -> Self {
        assert!(k > 0, "must retain at least one coefficient");
        // z-normalized features use bins 1..=k, so we maintain k + 1 raw bins.
        let raw_bins = match mode {
            Normalization::ZNorm => k + 1,
            Normalization::UnitNorm => k,
        };
        assert!(raw_bins <= window_len, "retained bins exceed window length");
        FeatureExtractor {
            window: SlidingWindow::new(window_len),
            raw: SlidingDft::new(window_len, raw_bins),
            stats: SlidingStats::new(),
            mode,
            k,
        }
    }

    /// Window length `w`.
    #[inline]
    pub fn window_len(&self) -> usize {
        self.window.capacity()
    }

    /// Retained coefficient count `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The normalization mode.
    #[inline]
    pub fn mode(&self) -> Normalization {
        self.mode
    }

    /// Consumes one stream value; returns the current summary once the
    /// window is full.
    // dsilint: allow(hot-path-alloc, legacy whole-vector API: the ingest path uses update_scratch + current_into; nominal .update resolution aliases this with the sketch updates)
    pub fn update(&mut self, value: f64) -> Option<FeatureVector> {
        let evicted = self.window.push(value);
        self.raw.update(value, evicted);
        self.stats.update(value, evicted);
        if !self.raw.is_warm() {
            return None;
        }
        Some(self.current())
    }

    /// Allocation-free variant of [`FeatureExtractor::update`]: consumes one
    /// value and, once the window is full, writes the summary into `scratch`
    /// (returning `true`). Bit-identical to `update` — both derive the
    /// normalized prefix with the same operations in the same order — but
    /// reuses the scratch buffers instead of allocating a [`FeatureVector`]
    /// per tick.
    pub fn update_scratch(&mut self, value: f64, scratch: &mut SummaryScratch) -> bool {
        let evicted = self.window.push(value);
        self.raw.update(value, evicted);
        self.stats.update(value, evicted);
        if !self.raw.is_warm() {
            return false;
        }
        self.current_into(scratch);
        true
    }

    /// Writes the current (full) window's summary into `scratch`, reusing
    /// its capacity. Same values as [`FeatureExtractor::current`].
    ///
    /// # Panics
    /// Panics if called before a full window has been consumed.
    pub fn current_into(&self, scratch: &mut SummaryScratch) {
        assert!(self.raw.is_warm(), "feature extractor not warm yet");
        let raw = self.raw.coeffs();
        scratch.coeffs.clear();
        match self.mode {
            Normalization::ZNorm => {
                let denom = self.stats.std_dev() * (self.window_len() as f64).sqrt();
                if denom <= f64::EPSILON {
                    scratch.coeffs.resize(self.k, Complex64::ZERO);
                } else {
                    scratch.coeffs.extend(raw[1..=self.k].iter().map(|c| *c / denom));
                }
            }
            Normalization::UnitNorm => {
                let denom = self.stats.l2_norm();
                if denom <= f64::EPSILON {
                    scratch.coeffs.resize(self.k, Complex64::ZERO);
                } else {
                    scratch.coeffs.extend(raw[..self.k].iter().map(|c| *c / denom));
                }
            }
        }
        scratch.reals.clear();
        scratch.reals.reserve(scratch.coeffs.len() * 2);
        for c in &scratch.coeffs {
            scratch.reals.push(c.re);
            scratch.reals.push(c.im);
        }
    }

    /// The summary of the current (full) window.
    ///
    /// # Panics
    /// Panics if called before a full window has been consumed.
    pub fn current(&self) -> FeatureVector {
        assert!(self.raw.is_warm(), "feature extractor not warm yet");
        let raw = self.raw.coeffs();
        let coeffs: Vec<Complex64> = match self.mode {
            Normalization::ZNorm => {
                let denom = self.stats.std_dev() * (self.window_len() as f64).sqrt();
                if denom <= f64::EPSILON {
                    vec![Complex64::ZERO; self.k]
                } else {
                    raw[1..=self.k].iter().map(|c| *c / denom).collect()
                }
            }
            Normalization::UnitNorm => {
                let denom = self.stats.l2_norm();
                if denom <= f64::EPSILON {
                    vec![Complex64::ZERO; self.k]
                } else {
                    raw[..self.k].iter().map(|c| *c / denom).collect()
                }
            }
        };
        FeatureVector::new(coeffs, self.mode)
    }

    /// Snapshot of the raw window (oldest first). Used by exact-verification
    /// paths that must filter false positives out of the candidate set.
    pub fn window_snapshot(&self) -> Vec<f64> {
        self.window.to_vec()
    }

    /// The *unnormalized* DFT coefficient prefix of the current window.
    /// Inner-product queries reconstruct an approximate raw signal from this
    /// prefix (Eq. 7); normalization would destroy the scale they need.
    pub fn raw_prefix(&self) -> &[Complex64] {
        self.raw.coeffs()
    }

    /// True once a full window has been consumed.
    #[inline]
    pub fn is_warm(&self) -> bool {
        self.raw.is_warm()
    }
}

/// Exact Euclidean distance between the normalized forms of two windows —
/// the ground truth that feature distances lower-bound.
pub fn normalized_distance(a: &[f64], b: &[f64], mode: Normalization) -> f64 {
    let na = normalize(a, mode);
    let nb = normalize(b, mode);
    na.iter().zip(nb.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, slope: f64, phase: f64) -> Vec<f64> {
        (0..n).map(|i| slope * i as f64 + (i as f64 * 0.9 + phase).sin()).collect()
    }

    #[test]
    fn incremental_matches_batch_znorm() {
        let xs = ramp(120, 0.05, 0.0);
        let (w, k) = (32, 4);
        let mut ex = FeatureExtractor::new(w, k, Normalization::ZNorm);
        for (i, &x) in xs.iter().enumerate() {
            if let Some(fv) = ex.update(x) {
                let batch = extract_features(&xs[i + 1 - w..=i], Normalization::ZNorm, k);
                for (a, b) in fv.coeffs().iter().zip(batch.coeffs().iter()) {
                    assert!(a.approx_eq(*b, 1e-8), "step {i}: {a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn incremental_matches_batch_unitnorm() {
        let xs = ramp(90, 0.02, 1.3);
        let (w, k) = (16, 3);
        let mut ex = FeatureExtractor::new(w, k, Normalization::UnitNorm);
        for (i, &x) in xs.iter().enumerate() {
            if let Some(fv) = ex.update(x) {
                let batch = extract_features(&xs[i + 1 - w..=i], Normalization::UnitNorm, k);
                for (a, b) in fv.coeffs().iter().zip(batch.coeffs().iter()) {
                    assert!(a.approx_eq(*b, 1e-8), "step {i}");
                }
            }
        }
    }

    #[test]
    fn scratch_path_is_bit_identical_to_update() {
        // The zero-alloc contract is only safe because the scratch path is
        // *bit*-identical to the allocating one — compare via to_bits, not
        // approx_eq, across both normalizations and a degenerate window.
        for mode in [Normalization::ZNorm, Normalization::UnitNorm] {
            let mut a = FeatureExtractor::new(16, 3, mode);
            let mut b = FeatureExtractor::new(16, 3, mode);
            let mut scratch = SummaryScratch::default();
            let xs: Vec<f64> = (0..80)
                .map(|i| if (20..40).contains(&i) { 7.0 } else { (i as f64 * 0.31).sin() * 3.0 })
                .collect();
            for (i, &x) in xs.iter().enumerate() {
                let fv = a.update(x);
                let warm = b.update_scratch(x, &mut scratch);
                assert_eq!(fv.is_some(), warm, "warm-up divergence at step {i}");
                if let Some(fv) = fv {
                    assert_eq!(fv.coeffs().len(), scratch.coeffs.len());
                    for (u, v) in fv.coeffs().iter().zip(scratch.coeffs.iter()) {
                        assert_eq!(u.re.to_bits(), v.re.to_bits(), "step {i}");
                        assert_eq!(u.im.to_bits(), v.im.to_bits(), "step {i}");
                    }
                    let reals = fv.to_reals();
                    assert_eq!(reals.len(), scratch.reals.len());
                    for (u, v) in reals.iter().zip(scratch.reals.iter()) {
                        assert_eq!(u.to_bits(), v.to_bits(), "step {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_buffers_stop_growing_once_warm() {
        let mut ex = FeatureExtractor::new(8, 2, Normalization::ZNorm);
        let mut scratch = SummaryScratch::default();
        for i in 0..8 {
            ex.update_scratch(i as f64, &mut scratch);
        }
        let (cc, rc) = (scratch.coeffs.capacity(), scratch.reals.capacity());
        for i in 8..200 {
            ex.update_scratch((i as f64 * 0.7).cos(), &mut scratch);
        }
        assert_eq!(scratch.coeffs.capacity(), cc, "coeff buffer regrew");
        assert_eq!(scratch.reals.capacity(), rc, "reals buffer regrew");
    }

    #[test]
    fn overwrite_reuses_capacity() {
        let mut fv = FeatureVector::new(
            vec![Complex64::new(0.1, 0.2), Complex64::new(0.3, 0.4)],
            Normalization::ZNorm,
        );
        let cap = fv.coeffs.capacity();
        fv.overwrite(&[Complex64::new(0.9, -0.1)], Normalization::UnitNorm);
        assert_eq!(fv.coeffs(), &[Complex64::new(0.9, -0.1)]);
        assert_eq!(fv.mode(), Normalization::UnitNorm);
        assert_eq!(fv.coeffs.capacity(), cap);
    }

    #[test]
    fn first_real_is_bounded() {
        let xs = ramp(500, -0.03, 2.0);
        let mut ex = FeatureExtractor::new(64, 2, Normalization::ZNorm);
        for &x in &xs {
            if let Some(fv) = ex.update(x) {
                assert!(fv.first_real() >= -1.0 && fv.first_real() <= 1.0);
            }
        }
    }

    #[test]
    fn feature_distance_lower_bounds_signal_distance() {
        let a = ramp(32, 0.1, 0.0);
        let b = ramp(32, -0.07, 0.5);
        for mode in [Normalization::ZNorm, Normalization::UnitNorm] {
            for k in 1..6 {
                let fa = extract_features(&a, mode, k);
                let fb = extract_features(&b, mode, k);
                let lower = fa.distance(&fb);
                let exact = normalized_distance(&a, &b, mode);
                assert!(
                    lower <= exact + 1e-9,
                    "mode {mode:?} k={k}: lower {lower} > exact {exact}"
                );
            }
        }
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = ramp(16, 0.2, 0.3);
        let fa = extract_features(&a, Normalization::ZNorm, 3);
        assert!(fa.distance(&fa) < 1e-12);
    }

    #[test]
    fn similar_streams_have_close_features() {
        let a = ramp(32, 0.1, 0.0);
        // Same shape scaled and shifted: z-norm features must coincide.
        let b: Vec<f64> = a.iter().map(|v| 5.0 * v + 100.0).collect();
        let fa = extract_features(&a, Normalization::ZNorm, 4);
        let fb = extract_features(&b, Normalization::ZNorm, 4);
        assert!(fa.distance(&fb) < 1e-9);
    }

    #[test]
    fn constant_window_yields_zero_features() {
        let mut ex = FeatureExtractor::new(8, 2, Normalization::ZNorm);
        let mut last = None;
        for _ in 0..10 {
            last = ex.update(42.0);
        }
        let fv = last.unwrap();
        assert!(fv.coeffs().iter().all(|c| c.norm() == 0.0));
        assert_eq!(fv.first_real(), 0.0);
    }

    #[test]
    fn to_reals_interleaves() {
        let fv = FeatureVector::new(
            vec![Complex64::new(0.1, 0.2), Complex64::new(-0.3, 0.4)],
            Normalization::ZNorm,
        );
        assert_eq!(fv.to_reals(), vec![0.1, 0.2, -0.3, 0.4]);
    }

    #[test]
    fn warmup_returns_none() {
        let mut ex = FeatureExtractor::new(4, 1, Normalization::UnitNorm);
        assert!(ex.update(1.0).is_none());
        assert!(ex.update(2.0).is_none());
        assert!(ex.update(3.0).is_none());
        assert!(ex.update(4.0).is_some());
        assert!(ex.is_warm());
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn distance_checks_dims() {
        let a = FeatureVector::new(vec![Complex64::ZERO], Normalization::ZNorm);
        let b = FeatureVector::new(vec![Complex64::ZERO; 2], Normalization::ZNorm);
        let _ = a.distance(&b);
    }
}
