//! A minimal complex-number type.
//!
//! The paper's summaries are truncated DFT coefficient vectors; we implement
//! the arithmetic from scratch rather than pulling in a numerics crate.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates `e^{i theta}` — a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64 { re: theta.cos(), im: theta.sin() }
    }

    /// Creates a complex number from polar coordinates.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64 { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 { re: self.re, im: -self.im }
    }

    /// Squared magnitude `|z|^2`; cheaper than [`Complex64::norm`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns NaN components for zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64 { re: self.re / d, im: -self.im / d }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64 { re: self.re * s, im: self.im * s }
    }

    /// Returns true if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality with absolute tolerance `eps` on both parts.
    #[inline]
    pub fn approx_eq(self, other: Self, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_re(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64 { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64 { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w^-1
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Complex64 { re: self.re / rhs, im: self.im / rhs }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64 { re: -self.re, im: -self.im }
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex64::new(1.5, -2.25);
        let b = Complex64::new(-0.5, 4.0);
        assert!(((a + b) - b).approx_eq(a, EPS));
    }

    #[test]
    fn mul_matches_expansion() {
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(-1.0, 5.0);
        // (2+3i)(-1+5i) = -2 + 10i - 3i + 15i^2 = -17 + 7i
        assert!((a * b).approx_eq(Complex64::new(-17.0, 7.0), EPS));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex64::I * Complex64::I).approx_eq(-Complex64::ONE, EPS));
    }

    #[test]
    fn div_inverse() {
        let a = Complex64::new(3.0, -4.0);
        assert!((a / a).approx_eq(Complex64::ONE, EPS));
        assert!((a * a.inv()).approx_eq(Complex64::ONE, EPS));
    }

    #[test]
    fn norm_and_norm_sqr_agree() {
        let a = Complex64::new(3.0, 4.0);
        assert!((a.norm() - 5.0).abs() < EPS);
        assert!((a.norm_sqr() - 25.0).abs() < EPS);
    }

    #[test]
    fn conj_negates_imaginary() {
        let a = Complex64::new(1.0, 2.0);
        assert_eq!(a.conj(), Complex64::new(1.0, -2.0));
        // z * conj(z) = |z|^2 (real)
        let p = a * a.conj();
        assert!(p.approx_eq(Complex64::from_re(a.norm_sqr()), EPS));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let z = Complex64::cis(k as f64 * 0.5);
            assert!((z.norm() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.norm() - 2.0).abs() < EPS);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < EPS);
    }

    #[test]
    fn sum_folds_zero() {
        let v = vec![Complex64::new(1.0, 1.0); 4];
        let s: Complex64 = v.into_iter().sum();
        assert!(s.approx_eq(Complex64::new(4.0, 4.0), EPS));
    }
}
