//! # dsi-dsp — signal-processing substrate
//!
//! Everything the stream-summarization layer of the paper needs, built from
//! scratch:
//!
//! * [`complex::Complex64`] — complex arithmetic;
//! * [`dft`] — the unitary DFT / inverse DFT reference (paper Eq. 3/4) and
//!   prefix reconstruction (Eq. 7);
//! * [`fft`] — iterative radix-2 FFT with identical scaling;
//! * [`sliding::SlidingDft`] — the O(1)-per-coefficient incremental update
//!   (Eq. 5) that makes per-item processing feasible;
//! * [`mod@normalize`] — z-normalization (Eq. 1) and unit-norm normalization
//!   (Eq. 2) plus incremental window statistics;
//! * [`features`] — truncated-DFT stream summaries with the lower-bounding
//!   distance (Eq. 9) that guarantees no false dismissals;
//! * [`window::SlidingWindow`] — the sliding-window data model (§III-A);
//! * [`mbr::Mbr`] — feature-space minimum bounding rectangles (§IV-G);
//! * [`wavelet`] — the Haar-wavelet alternative summarizer the paper cites
//!   (STARDUST, reference [6]).

#![warn(missing_docs)]

pub mod complex;
pub mod dft;
pub mod features;
pub mod fft;
pub mod kernel;
pub mod mbr;
pub mod normalize;
pub mod sliding;
pub mod wavelet;
pub mod window;

pub use complex::Complex64;
pub use features::{
    extract_features, normalized_distance, FeatureExtractor, FeatureVector, SummaryScratch,
};
pub use mbr::Mbr;
pub use normalize::{normalize, unit_normalize, z_normalize, Normalization, SlidingStats};
pub use sliding::SlidingDft;
pub use wavelet::{haar_forward, haar_inverse, HaarSynopsis};
pub use window::SlidingWindow;
