//! Minimum bounding rectangles in feature space (§IV-G).
//!
//! Consecutive summaries of a stream exhibit "Fourier locality", so every
//! `zeta` of them are grouped into an MBR and the MBR is shipped instead of
//! the individual vectors. An MBR is a pair of corner points `low <= high`
//! per dimension (Eq. 10).

use crate::features::FeatureVector;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in the (2k-dimensional real) feature space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mbr {
    low: Vec<f64>,
    high: Vec<f64>,
}

impl Mbr {
    /// Creates a degenerate MBR containing exactly one point.
    pub fn from_point(p: &[f64]) -> Self {
        Mbr { low: p.to_vec(), high: p.to_vec() }
    }

    /// Creates an MBR from explicit corners.
    ///
    /// # Panics
    /// Panics if lengths differ or any `low > high`.
    pub fn from_corners(low: Vec<f64>, high: Vec<f64>) -> Self {
        assert_eq!(low.len(), high.len(), "corner dimensionality mismatch");
        assert!(
            low.iter().zip(high.iter()).all(|(l, h)| l <= h),
            "low corner must not exceed high corner"
        );
        Mbr { low, high }
    }

    /// Builds the tight MBR around a set of feature vectors.
    ///
    /// # Panics
    /// Panics on an empty set.
    pub fn from_features<'a, I: IntoIterator<Item = &'a FeatureVector>>(features: I) -> Self {
        let mut it = features.into_iter();
        let first = it.next().expect("cannot bound an empty feature set");
        let mut mbr = Mbr::from_point(&first.to_reals());
        for fv in it {
            mbr.extend_point(&fv.to_reals());
        }
        mbr
    }

    /// Dimensionality of the space.
    #[inline]
    pub fn dims(&self) -> usize {
        self.low.len()
    }

    /// Lower corner.
    #[inline]
    pub fn low(&self) -> &[f64] {
        &self.low
    }

    /// Upper corner.
    #[inline]
    pub fn high(&self) -> &[f64] {
        &self.high
    }

    /// Extent along the first dimension — the interval `[l_1, h_1]` whose
    /// image under Eq. 6 is the replication key range.
    #[inline]
    pub fn first_interval(&self) -> (f64, f64) {
        (self.low[0], self.high[0])
    }

    /// Grows the box to cover `p`.
    pub fn extend_point(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dims(), "point dimensionality mismatch");
        for ((l, h), &v) in self.low.iter_mut().zip(self.high.iter_mut()).zip(p.iter()) {
            if v < *l {
                *l = v;
            }
            if v > *h {
                *h = v;
            }
        }
    }

    /// Grows the box to cover another box.
    pub fn extend_mbr(&mut self, other: &Mbr) {
        self.extend_point(&other.low.clone());
        self.extend_point(&other.high.clone());
    }

    /// Widens every dimension by `pad` on both sides (adaptive-precision
    /// extension, §VI-A).
    pub fn inflate(&mut self, pad: f64) {
        assert!(pad >= 0.0, "padding must be non-negative");
        for (l, h) in self.low.iter_mut().zip(self.high.iter_mut()) {
            *l -= pad;
            *h += pad;
        }
    }

    /// True if `p` lies inside (inclusive).
    pub fn contains(&self, p: &[f64]) -> bool {
        p.len() == self.dims()
            && self
                .low
                .iter()
                .zip(self.high.iter())
                .zip(p.iter())
                .all(|((l, h), v)| *l <= *v && *v <= *h)
    }

    /// True if the boxes overlap (inclusive).
    pub fn intersects(&self, other: &Mbr) -> bool {
        assert_eq!(self.dims(), other.dims(), "MBR dimensionality mismatch");
        self.low
            .iter()
            .zip(self.high.iter())
            .zip(other.low.iter().zip(other.high.iter()))
            .all(|((al, ah), (bl, bh))| al <= bh && bl <= ah)
    }

    /// Minimum squared Euclidean distance from `p` to the box (0 inside).
    ///
    /// This is the classical R-tree MINDIST: a query ball of radius `r`
    /// can contain a point of the box only if `min_dist_sqr <= r^2`, which is
    /// the candidate test run at every data center holding the MBR.
    pub fn min_dist_sqr(&self, p: &[f64]) -> f64 {
        assert_eq!(p.len(), self.dims(), "point dimensionality mismatch");
        self.low
            .iter()
            .zip(self.high.iter())
            .zip(p.iter())
            .map(|((l, h), v)| {
                let d = if v < l {
                    l - v
                } else if v > h {
                    v - h
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }

    /// Minimum Euclidean distance from `p` to the box.
    pub fn min_dist(&self, p: &[f64]) -> f64 {
        self.min_dist_sqr(p).sqrt()
    }

    /// Center point.
    pub fn center(&self) -> Vec<f64> {
        self.low.iter().zip(self.high.iter()).map(|(l, h)| (l + h) / 2.0).collect()
    }

    /// Sum of side lengths (the R*-tree "margin").
    pub fn margin(&self) -> f64 {
        self.low.iter().zip(self.high.iter()).map(|(l, h)| h - l).sum()
    }

    /// Product of side lengths.
    pub fn volume(&self) -> f64 {
        self.low.iter().zip(self.high.iter()).map(|(l, h)| h - l).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use crate::normalize::Normalization;

    fn fv(re: f64, im: f64) -> FeatureVector {
        FeatureVector::new(vec![Complex64::new(re, im)], Normalization::ZNorm)
    }

    #[test]
    fn from_features_bounds_all() {
        let feats = vec![fv(0.1, 0.2), fv(-0.3, 0.5), fv(0.0, -0.1)];
        let mbr = Mbr::from_features(&feats);
        assert_eq!(mbr.low(), &[-0.3, -0.1]);
        assert_eq!(mbr.high(), &[0.1, 0.5]);
        for f in &feats {
            assert!(mbr.contains(&f.to_reals()));
        }
    }

    #[test]
    fn paper_figure4_mbr() {
        // Fig. 4 shows an MBR with corners [0.09, 0.12] and [0.21, 0.40] in
        // the first two dimensions; its first interval drives replication.
        let mbr = Mbr::from_corners(vec![0.09, 0.12], vec![0.21, 0.40]);
        assert_eq!(mbr.first_interval(), (0.09, 0.21));
        assert!(mbr.contains(&[0.1, 0.2]));
        assert!(!mbr.contains(&[0.3, 0.2]));
    }

    #[test]
    fn min_dist_zero_inside_positive_outside() {
        let mbr = Mbr::from_corners(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert_eq!(mbr.min_dist_sqr(&[0.5, 0.5]), 0.0);
        assert!((mbr.min_dist(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert!((mbr.min_dist(&[2.0, 2.0]) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn min_dist_lower_bounds_contained_points() {
        // For any point q and any point p inside the box,
        // min_dist(q) <= |q - p|.
        let mbr = Mbr::from_corners(vec![-1.0, 0.0], vec![1.0, 2.0]);
        let q = [3.0, -1.0];
        for p in [[0.0f64, 1.0], [-1.0, 0.0], [1.0, 2.0], [0.5, 0.3]] {
            let d: f64 = q.iter().zip(p.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            assert!(mbr.min_dist(&q) <= d + 1e-12);
        }
    }

    #[test]
    fn extend_and_intersect() {
        let mut a = Mbr::from_point(&[0.0, 0.0]);
        a.extend_point(&[1.0, 1.0]);
        let b = Mbr::from_corners(vec![0.5, 0.5], vec![2.0, 2.0]);
        assert!(a.intersects(&b));
        let c = Mbr::from_corners(vec![1.5, 1.5], vec![2.0, 2.0]);
        assert!(!a.intersects(&c));
        a.extend_mbr(&c);
        assert!(a.intersects(&c));
        assert!(a.contains(&[1.2, 1.7]));
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let mut m = Mbr::from_corners(vec![0.0], vec![1.0]);
        m.inflate(0.25);
        assert_eq!(m.low(), &[-0.25]);
        assert_eq!(m.high(), &[1.25]);
        assert!((m.margin() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_point_box() {
        let m = Mbr::from_point(&[0.3, -0.2]);
        assert_eq!(m.volume(), 0.0);
        assert_eq!(m.margin(), 0.0);
        assert!(m.contains(&[0.3, -0.2]));
        assert_eq!(m.center(), vec![0.3, -0.2]);
    }

    #[test]
    #[should_panic(expected = "empty feature set")]
    fn empty_feature_set_panics() {
        let _ = Mbr::from_features(&[]);
    }

    #[test]
    #[should_panic(expected = "low corner must not exceed")]
    fn inverted_corners_panic() {
        let _ = Mbr::from_corners(vec![1.0], vec![0.0]);
    }
}
