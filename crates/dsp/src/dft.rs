//! Orthonormal discrete Fourier transform (naive `O(n^2)` reference).
//!
//! The paper (Eq. 3/4) uses the unitary convention with a `1/sqrt(N)` factor
//! in **both** directions, so that the transform preserves signal energy
//! (Parseval). This module is the reference implementation; the radix-2 FFT
//! in [`crate::fft`] and the incremental update in [`crate::sliding`] are
//! tested against it.
//!
//! Kernel values come from the per-length tables in [`crate::kernel`], so the
//! `n^2` `cis()` calls are paid once per transform length per thread instead
//! of once per transform. The tables store the bitwise-identical values the
//! inline calls produced, keeping the golden-report regression byte-exact.

use crate::complex::Complex64;
use crate::kernel;

/// Computes the unitary DFT of a real signal:
/// `X_f = (1/sqrt(N)) * sum_i x_i e^{-j 2 pi f i / N}`.
pub fn dft(signal: &[f64]) -> Vec<Complex64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    kernel::with_kernel(n, |k| {
        (0..n)
            .map(|f| {
                let mut acc = Complex64::ZERO;
                for (i, &x) in signal.iter().enumerate() {
                    acc += k.forward(f, i) * x;
                }
                acc.scale(scale)
            })
            .collect()
    })
}

/// Computes the unitary DFT of a complex signal.
pub fn dft_complex(signal: &[Complex64]) -> Vec<Complex64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    kernel::with_kernel(n, |k| {
        (0..n)
            .map(|f| {
                let mut acc = Complex64::ZERO;
                for (i, &x) in signal.iter().enumerate() {
                    acc += k.forward(f, i) * x;
                }
                acc.scale(scale)
            })
            .collect()
    })
}

/// Inverse unitary DFT: `x_i = (1/sqrt(N)) * sum_f X_f e^{+j 2 pi f i / N}`
/// (Eq. 4 in the paper). Returns a complex signal; for transforms of real
/// signals the imaginary parts are numerically zero.
pub fn idft(coeffs: &[Complex64]) -> Vec<Complex64> {
    let n = coeffs.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    kernel::with_kernel(n, |k| {
        (0..n)
            .map(|i| {
                let mut acc = Complex64::ZERO;
                for (f, &c) in coeffs.iter().enumerate() {
                    acc += k.inverse(f, i) * c;
                }
                acc.scale(scale)
            })
            .collect()
    })
}

/// Reconstructs an approximate real signal of length `n` from the first `k`
/// coefficients of a unitary DFT of a **real** signal (Eq. 7 in the paper).
///
/// Because the signal is real, `X_{N-f} = conj(X_f)`; each retained
/// non-DC coefficient therefore contributes twice its real projection.
pub fn reconstruct_from_prefix(prefix: &[Complex64], n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    let keep = prefix.len().min(n);
    kernel::with_kernel(n, |kern| {
        (0..n)
            .map(|i| {
                let mut acc = 0.0;
                for (f, &c) in prefix.iter().take(keep).enumerate() {
                    let term = (c * kern.inverse(f, i)).re;
                    // The DC term (f = 0) and, for even n, the Nyquist term
                    // (f = n/2) are their own conjugate mirrors.
                    if f == 0 || 2 * f == n {
                        acc += term;
                    } else {
                        acc += 2.0 * term;
                    }
                }
                acc * scale
            })
            .collect()
    })
}

/// Signal energy: `sum_i x_i^2`.
pub fn energy(signal: &[f64]) -> f64 {
    signal.iter().map(|x| x * x).sum()
}

/// Spectrum energy: `sum_f |X_f|^2`.
pub fn spectrum_energy(coeffs: &[Complex64]) -> f64 {
    coeffs.iter().map(|c| c.norm_sqr()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} vs {b}");
    }

    #[test]
    fn dft_of_constant_is_dc_only() {
        let x = vec![3.0; 8];
        let c = dft(&x);
        // DC coefficient = sqrt(N) * mean = 3 * sqrt(8)
        assert_close(c[0].re, 3.0 * 8f64.sqrt(), 1e-9);
        for (f, coeff) in c.iter().enumerate().skip(1) {
            assert!(coeff.norm() < 1e-9, "bin {f} should be empty");
        }
    }

    #[test]
    fn dft_of_single_tone_concentrates() {
        let n = 16;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 2.0 * i as f64 / n as f64).cos())
            .collect();
        let c = dft(&x);
        // A cosine at bin 2 puts energy at bins 2 and n-2 only.
        assert!(c[2].norm() > 1.0);
        assert!(c[n - 2].norm() > 1.0);
        for (f, coeff) in c.iter().enumerate() {
            if f != 2 && f != n - 2 {
                assert!(coeff.norm() < 1e-9, "bin {f} leaked {}", coeff.norm());
            }
        }
    }

    #[test]
    fn parseval_holds() {
        let x: Vec<f64> = (0..32).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let c = dft(&x);
        assert_close(energy(&x), spectrum_energy(&c), 1e-9);
    }

    #[test]
    fn idft_inverts_dft() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin() + 0.1 * i as f64).collect();
        let back = idft(&dft(&x));
        for (orig, rec) in x.iter().zip(back.iter()) {
            assert_close(*orig, rec.re, 1e-9);
            assert!(rec.im.abs() < 1e-9);
        }
    }

    #[test]
    fn conjugate_symmetry_for_real_signals() {
        let x: Vec<f64> = (0..12).map(|i| (i as f64).sqrt() - 1.0).collect();
        let c = dft(&x);
        for f in 1..12 {
            assert!(c[12 - f].approx_eq(c[f].conj(), 1e-9));
        }
    }

    #[test]
    fn full_prefix_reconstruction_is_exact() {
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3).cos() * 2.0).collect();
        let c = dft(&x);
        // Keeping bins 0..=n/2 of a real signal is lossless.
        let rec = reconstruct_from_prefix(&c[..9], 16);
        for (orig, r) in x.iter().zip(rec.iter()) {
            assert_close(*orig, *r, 1e-9);
        }
    }

    #[test]
    fn truncated_reconstruction_preserves_trend() {
        // Slow ramp plus fast noise: first coefficients capture the ramp.
        let n = 64;
        let x: Vec<f64> =
            (0..n).map(|i| i as f64 / n as f64 + 0.01 * ((i * 37 % 11) as f64 - 5.0)).collect();
        let c = dft(&x);
        let rec = reconstruct_from_prefix(&c[..4], n);
        // Reconstruction error must be small relative to signal energy.
        let err: f64 = x.iter().zip(rec.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!(err / energy(&x) < 0.15, "relative error {}", err / energy(&x));
    }

    #[test]
    fn empty_signal() {
        assert!(dft(&[]).is_empty());
        assert!(idft(&[]).is_empty());
        assert!(reconstruct_from_prefix(&[], 0).is_empty());
    }

    #[test]
    fn table_backed_dft_is_bit_identical_to_inline_loop() {
        // The kernel cache must not shift a single bit of the transform the
        // golden report depends on; compare against the original inline form.
        for n in [5usize, 16, 32, 33] {
            let x: Vec<f64> = (0..n).map(|i| ((i * 13 + 5) % 7) as f64 - 3.0).collect();
            let scale = 1.0 / (n as f64).sqrt();
            let step = -2.0 * std::f64::consts::PI / n as f64;
            let expected: Vec<Complex64> = (0..n)
                .map(|f| {
                    let mut acc = Complex64::ZERO;
                    for (i, &v) in x.iter().enumerate() {
                        acc += Complex64::cis(step * (f * i) as f64) * v;
                    }
                    acc.scale(scale)
                })
                .collect();
            let got = dft(&x);
            for (f, (e, g)) in expected.iter().zip(got.iter()).enumerate() {
                assert_eq!(e.re.to_bits(), g.re.to_bits(), "n={n} bin={f} (re)");
                assert_eq!(e.im.to_bits(), g.im.to_bits(), "n={n} bin={f} (im)");
            }
        }
    }

    #[test]
    fn dft_complex_matches_real_path() {
        let x: Vec<f64> = (0..10).map(|i| i as f64 - 4.5).collect();
        let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::from_re(v)).collect();
        let a = dft(&x);
        let b = dft_complex(&xc);
        for (u, v) in a.iter().zip(b.iter()) {
            assert!(u.approx_eq(*v, 1e-12));
        }
    }
}
