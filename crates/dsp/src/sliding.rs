//! Incremental (sliding) DFT — the paper's Eq. 5.
//!
//! When the window slides by one sample (`x_old` leaves, `x_new` enters),
//! each unitary DFT coefficient updates in O(1):
//!
//! ```text
//! X'_f = e^{j 2 pi f / w} * ( X_f + (x_new - x_old) / sqrt(w) )
//! ```
//!
//! Maintaining the first `k` coefficients therefore costs O(k) per arriving
//! data item instead of O(w log w) for a recompute — the property that makes
//! per-item stream summarization feasible (§III-C).

use crate::complex::Complex64;
use serde::{Deserialize, Serialize};

/// Incrementally maintained prefix of the unitary DFT of a sliding window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlidingDft {
    /// Window length `w`.
    window_len: usize,
    /// `e^{j 2 pi f / w}` for each maintained coefficient `f`.
    twiddles: Vec<Complex64>,
    /// The maintained coefficients `X_0 .. X_{k-1}`.
    coeffs: Vec<Complex64>,
    /// Number of samples consumed so far (for warm-up detection).
    consumed: usize,
}

impl SlidingDft {
    /// Creates a sliding DFT over windows of length `window_len`, maintaining
    /// the first `num_coeffs` coefficients.
    ///
    /// # Panics
    /// Panics if `window_len == 0` or `num_coeffs > window_len`.
    pub fn new(window_len: usize, num_coeffs: usize) -> Self {
        assert!(window_len > 0, "window length must be positive");
        assert!(num_coeffs <= window_len, "cannot maintain more coefficients than window bins");
        let step = 2.0 * std::f64::consts::PI / window_len as f64;
        SlidingDft {
            window_len,
            twiddles: (0..num_coeffs).map(|f| Complex64::cis(step * f as f64)).collect(),
            coeffs: vec![Complex64::ZERO; num_coeffs],
            consumed: 0,
        }
    }

    /// Window length `w`.
    #[inline]
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Number of maintained coefficients `k`.
    #[inline]
    pub fn num_coeffs(&self) -> usize {
        self.coeffs.len()
    }

    /// True once a full window has been consumed, i.e. the coefficients
    /// describe an actual window of the stream.
    #[inline]
    pub fn is_warm(&self) -> bool {
        self.consumed >= self.window_len
    }

    /// Applies Eq. 5 for one arriving sample. `evicted` must be the value
    /// that left the window (`None` during warm-up, when the window treats
    /// missing history as zeros).
    pub fn update(&mut self, new: f64, evicted: Option<f64>) {
        let delta = (new - evicted.unwrap_or(0.0)) / (self.window_len as f64).sqrt();
        for (c, &tw) in self.coeffs.iter_mut().zip(self.twiddles.iter()) {
            *c = (*c + Complex64::from_re(delta)) * tw;
        }
        self.consumed += 1;
    }

    /// The maintained coefficient prefix `X_0 .. X_{k-1}`.
    #[inline]
    pub fn coeffs(&self) -> &[Complex64] {
        &self.coeffs
    }

    /// Resets to the empty state.
    pub fn reset(&mut self) {
        self.coeffs.fill(Complex64::ZERO);
        self.consumed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;
    use crate::window::SlidingWindow;

    /// Feeds a stream through the sliding DFT and checks every warm state
    /// against a from-scratch transform of the current window.
    fn check_stream(xs: &[f64], w: usize, k: usize, eps: f64) {
        let mut sdft = SlidingDft::new(w, k);
        let mut win = SlidingWindow::new(w);
        for &x in xs {
            let ev = win.push(x);
            sdft.update(x, ev);
            if sdft.is_warm() {
                let reference = dft(&win.to_vec());
                for (f, c) in sdft.coeffs().iter().enumerate() {
                    assert!(
                        c.approx_eq(reference[f], eps),
                        "coeff {f}: sliding {c:?} vs batch {:?}",
                        reference[f]
                    );
                }
            }
        }
    }

    #[test]
    fn matches_batch_dft_on_ramp() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        check_stream(&xs, 16, 5, 1e-9);
    }

    #[test]
    fn matches_batch_dft_on_oscillation() {
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37).sin() * 4.0 + 1.0).collect();
        check_stream(&xs, 32, 8, 1e-8);
    }

    #[test]
    fn matches_batch_dft_non_pow2_window() {
        let xs: Vec<f64> = (0..90).map(|i| ((i * i) % 17) as f64 - 8.0).collect();
        check_stream(&xs, 10, 10, 1e-9);
    }

    #[test]
    fn warmup_flag() {
        let mut sdft = SlidingDft::new(4, 2);
        for i in 0..3 {
            sdft.update(i as f64, None);
            assert!(!sdft.is_warm());
        }
        sdft.update(3.0, None);
        assert!(sdft.is_warm());
    }

    #[test]
    fn reset_clears_state() {
        let mut sdft = SlidingDft::new(4, 3);
        let mut win = SlidingWindow::new(4);
        for i in 0..10 {
            let ev = win.push(i as f64);
            sdft.update(i as f64, ev);
        }
        sdft.reset();
        assert!(!sdft.is_warm());
        assert!(sdft.coeffs().iter().all(|c| c.norm() == 0.0));
    }

    #[test]
    #[should_panic(expected = "more coefficients")]
    fn too_many_coeffs_panics() {
        let _ = SlidingDft::new(4, 5);
    }

    #[test]
    fn numerical_stability_over_long_streams() {
        // Rotation factors have unit magnitude; drift should stay tiny even
        // after 50k updates.
        let xs: Vec<f64> = (0..50_000).map(|i| ((i * 31 % 101) as f64) / 10.0).collect();
        let w = 64;
        let mut sdft = SlidingDft::new(w, 4);
        let mut win = SlidingWindow::new(w);
        for &x in &xs {
            let ev = win.push(x);
            sdft.update(x, ev);
        }
        let reference = dft(&win.to_vec());
        for (f, c) in sdft.coeffs().iter().enumerate() {
            assert!(c.approx_eq(reference[f], 1e-6), "drift too large at bin {f}");
        }
    }
}
