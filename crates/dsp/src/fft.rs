//! Iterative radix-2 Cooley-Tukey FFT with the same unitary scaling as
//! [`crate::dft`].
//!
//! Power-of-two lengths run in `O(n log n)`; other lengths fall back to the
//! naive transform, which keeps the API total without dragging in a Bluestein
//! implementation the paper never needs (its windows are powers of two).

use crate::complex::Complex64;
use crate::dft;
use crate::kernel::{self, Kernel};

/// Returns true if `n` is a power of two (and nonzero).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place bit-reversal permutation.
fn bit_reverse_permute(buf: &mut [Complex64]) {
    let n = buf.len();
    if n <= 2 {
        return; // lengths 1 and 2 are their own bit-reversal
    }
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
}

/// Core iterative butterfly pass. `inverse` selects the twiddle sign.
///
/// Stage twiddles are read from the shared per-length [`Kernel`] table
/// (stride `n / len` into the half-size twiddle vector) rather than built by
/// repeated multiplication, which both removes the per-butterfly complex
/// multiply and avoids the O(len) error accumulation of the recurrence.
fn fft_in_place(buf: &mut [Complex64], kern: &Kernel, inverse: bool) {
    let n = buf.len();
    debug_assert!(is_pow2(n));
    bit_reverse_permute(buf);
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let stride = n / len;
        for chunk in buf.chunks_mut(len) {
            for i in 0..half {
                let mut w = kern.half_twiddle(i * stride);
                if inverse {
                    w = w.conj();
                }
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
            }
        }
        len <<= 1;
    }
}

/// Unitary FFT of a real signal. Equals [`dft::dft`] up to rounding.
pub fn fft(signal: &[f64]) -> Vec<Complex64> {
    let mut buf = Vec::new();
    fft_into(signal, &mut buf);
    buf
}

/// Unitary FFT of a real signal into a caller-provided buffer.
///
/// Bit-identical to [`fft`]; once `buf`'s capacity covers `signal.len()` the
/// call performs no heap allocation, which is what lets the steady-state
/// ingest scratch path stay allocation-free.
pub fn fft_into(signal: &[f64], buf: &mut Vec<Complex64>) {
    let n = signal.len();
    buf.clear();
    if !is_pow2(n) {
        buf.extend_from_slice(&dft::dft(signal));
        return;
    }
    buf.extend(signal.iter().map(|&x| Complex64::from_re(x)));
    kernel::with_kernel(n, |k| fft_in_place(buf, k, false));
    let scale = 1.0 / (n as f64).sqrt();
    for c in buf.iter_mut() {
        *c = c.scale(scale);
    }
}

/// Unitary FFT of a complex signal.
pub fn fft_complex(signal: &[Complex64]) -> Vec<Complex64> {
    let n = signal.len();
    if !is_pow2(n) {
        return dft::dft_complex(signal);
    }
    let mut buf = signal.to_vec();
    kernel::with_kernel(n, |k| fft_in_place(&mut buf, k, false));
    let scale = 1.0 / (n as f64).sqrt();
    for c in &mut buf {
        *c = c.scale(scale);
    }
    buf
}

/// Unitary inverse FFT. Equals [`dft::idft`] up to rounding.
pub fn ifft(coeffs: &[Complex64]) -> Vec<Complex64> {
    let n = coeffs.len();
    if !is_pow2(n) {
        return dft::idft(coeffs);
    }
    let mut buf = coeffs.to_vec();
    kernel::with_kernel(n, |k| fft_in_place(&mut buf, k, true));
    let scale = 1.0 / (n as f64).sqrt();
    for c in &mut buf {
        *c = c.scale(scale);
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_dft_pow2() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            let x: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 17) as f64 - 8.0).collect();
            let a = dft::dft(&x);
            let b = fft(&x);
            for (u, v) in a.iter().zip(b.iter()) {
                assert!(u.approx_eq(*v, 1e-8), "n={n}: {u:?} vs {v:?}");
            }
        }
    }

    #[test]
    fn falls_back_for_non_pow2() {
        let x: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let a = dft::dft(&x);
        let b = fft(&x);
        for (u, v) in a.iter().zip(b.iter()) {
            assert!(u.approx_eq(*v, 1e-9));
        }
    }

    #[test]
    fn ifft_roundtrip() {
        let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.1).sin()).collect();
        let back = ifft(&fft(&x));
        for (orig, rec) in x.iter().zip(back.iter()) {
            assert!((orig - rec.re).abs() < 1e-9);
            assert!(rec.im.abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_via_fft() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64).cos() * 3.0).collect();
        let e_sig = dft::energy(&x);
        let e_spec = dft::spectrum_energy(&fft(&x));
        assert!((e_sig - e_spec).abs() < 1e-8);
    }

    #[test]
    fn pow2_detector() {
        assert!(is_pow2(1));
        assert!(is_pow2(1024));
        assert!(!is_pow2(0));
        assert!(!is_pow2(3));
        assert!(!is_pow2(12));
    }

    #[test]
    fn fft_into_is_bit_identical_and_alloc_free_on_reuse() {
        let mut buf = Vec::new();
        for n in [1usize, 2, 8, 12, 64, 256] {
            let x: Vec<f64> = (0..n).map(|i| ((i * 13 + 5) % 23) as f64 - 11.0).collect();
            let a = fft(&x);
            fft_into(&x, &mut buf);
            assert_eq!(a.len(), buf.len());
            for (u, v) in a.iter().zip(buf.iter()) {
                assert_eq!(u.re.to_bits(), v.re.to_bits(), "n={n}");
                assert_eq!(u.im.to_bits(), v.im.to_bits(), "n={n}");
            }
        }
        // Reuse with a smaller signal must not reallocate.
        let cap = buf.capacity();
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
        fft_into(&x, &mut buf);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn fft_complex_agrees_with_real_embedding() {
        let x: Vec<f64> = (0..16).map(|i| i as f64 * 0.25 - 2.0).collect();
        let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::from_re(v)).collect();
        let a = fft(&x);
        let b = fft_complex(&xc);
        for (u, v) in a.iter().zip(b.iter()) {
            assert!(u.approx_eq(*v, 1e-10));
        }
    }
}
