//! Shared precomputed DFT kernel tables.
//!
//! The naive transforms in [`crate::dft`] evaluate `cis(-2*pi*f*i/n)` for
//! every `(bin, sample)` pair — `n^2` transcendental calls per transform. The
//! same windows are transformed over and over (every stream uses the same
//! `window_len`, every query target the same), so this module memoizes the
//! full unitary kernel matrix per transform length in a thread-local cache.
//!
//! **Determinism contract:** the cached forward entry for `(f, i)` is computed
//! with the *exact* expression the naive loop used, `cis(step * (f * i) as
//! f64)` with `step = -2*pi/n` — not a phase-reduced or recurrence form — so
//! replacing the inline call with a table lookup is bit-identical and the
//! golden-report regression is unaffected. Inverse entries are the complex
//! conjugate, which matches `cis(+step * (f * i))` bit-for-bit because IEEE
//! `cos` is even and `sin` is odd in the sign of the argument.
//!
//! Lengths above [`MAX_CACHED_LEN`] would cost `O(n^2)` memory per length, so
//! they skip the matrix and fall back to on-the-fly evaluation (the half-size
//! butterfly twiddle vector is always cached — it is only `O(n)`).

use crate::complex::Complex64;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Largest transform length whose full `n x n` kernel matrix is cached
/// (512 complex doubles squared = 4 MiB). Longer transforms still cache the
/// `O(n)` butterfly twiddles and compute matrix entries on the fly.
pub const MAX_CACHED_LEN: usize = 512;

/// Precomputed unitary-DFT kernel for one transform length.
pub struct Kernel {
    n: usize,
    /// `-2*pi/n`, the forward angular step.
    step: f64,
    /// Row-major forward matrix: `fwd[f * n + i] = cis(step * (f * i))`.
    /// `None` above [`MAX_CACHED_LEN`].
    fwd: Option<Vec<Complex64>>,
    /// Forward butterfly twiddles: `half[i] = cis(step * i)` for `i < n/2`.
    half: Vec<Complex64>,
}

impl Kernel {
    fn build(n: usize) -> Self {
        debug_assert!(n > 0);
        let step = -2.0 * std::f64::consts::PI / n as f64;
        let fwd = (n <= MAX_CACHED_LEN).then(|| {
            let mut t = Vec::with_capacity(n * n);
            for f in 0..n {
                for i in 0..n {
                    t.push(Complex64::cis(step * (f * i) as f64));
                }
            }
            t
        });
        let half = (0..n / 2).map(|i| Complex64::cis(step * i as f64)).collect();
        Kernel { n, step, fwd, half }
    }

    /// Forward kernel entry `e^{-j 2 pi f i / n}`.
    #[inline]
    pub fn forward(&self, f: usize, i: usize) -> Complex64 {
        match &self.fwd {
            Some(t) => t[f * self.n + i],
            None => Complex64::cis(self.step * (f * i) as f64),
        }
    }

    /// Inverse kernel entry `e^{+j 2 pi f i / n}`.
    #[inline]
    pub fn inverse(&self, f: usize, i: usize) -> Complex64 {
        self.forward(f, i).conj()
    }

    /// Forward butterfly twiddle `e^{-j 2 pi i / n}` for `i < n/2`. For a
    /// radix-2 stage of length `len`, the stage twiddle `e^{-j 2 pi i / len}`
    /// is `half_twiddle(i * (n / len))`.
    #[inline]
    pub fn half_twiddle(&self, i: usize) -> Complex64 {
        self.half[i]
    }
}

/// Runs `body` with the (possibly freshly built) kernel for length `n`.
///
/// Kernels are cached per thread, so parallel ingest workers each warm their
/// own table once and then share nothing — no locks on the transform path.
pub fn with_kernel<R>(n: usize, body: impl FnOnce(&Kernel) -> R) -> R {
    thread_local! {
        static CACHE: RefCell<HashMap<usize, Rc<Kernel>>> = RefCell::new(HashMap::new());
    }
    let kernel = CACHE.with(|cache| {
        Rc::clone(cache.borrow_mut().entry(n).or_insert_with(|| Rc::new(Kernel::build(n))))
    });
    body(&kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_forward_is_bit_identical_to_inline_cis() {
        for n in [7usize, 16, 33] {
            let step = -2.0 * std::f64::consts::PI / n as f64;
            with_kernel(n, |k| {
                for f in 0..n {
                    for i in 0..n {
                        let direct = Complex64::cis(step * (f * i) as f64);
                        let cached = k.forward(f, i);
                        assert_eq!(direct.re.to_bits(), cached.re.to_bits(), "n={n} f={f} i={i}");
                        assert_eq!(direct.im.to_bits(), cached.im.to_bits(), "n={n} f={f} i={i}");
                    }
                }
            });
        }
    }

    #[test]
    fn inverse_is_bit_identical_to_positive_step_cis() {
        // cos is even and sin is odd, so conj(cis(-x)) must equal cis(+x)
        // bit-for-bit — the property the idft rewrite relies on.
        let n = 24;
        let step = 2.0 * std::f64::consts::PI / n as f64;
        with_kernel(n, |k| {
            for f in 0..n {
                for i in 0..n {
                    let direct = Complex64::cis(step * (f * i) as f64);
                    let cached = k.inverse(f, i);
                    assert_eq!(direct.re.to_bits(), cached.re.to_bits(), "f={f} i={i}");
                    assert_eq!(direct.im.to_bits(), cached.im.to_bits(), "f={f} i={i}");
                }
            }
        });
    }

    #[test]
    fn large_lengths_skip_the_matrix_but_stay_exact() {
        let n = MAX_CACHED_LEN + 1;
        let step = -2.0 * std::f64::consts::PI / n as f64;
        with_kernel(n, |k| {
            let direct = Complex64::cis(step * (3 * 5) as f64);
            let computed = k.forward(3, 5);
            assert_eq!(direct.re.to_bits(), computed.re.to_bits());
            assert_eq!(direct.im.to_bits(), computed.im.to_bits());
            assert_eq!(k.half_twiddle(0).re, 1.0);
        });
    }

    #[test]
    fn repeated_lookups_hit_the_same_table() {
        let first = with_kernel(8, |k| k.forward(2, 3));
        let second = with_kernel(8, |k| k.forward(2, 3));
        assert_eq!(first.re.to_bits(), second.re.to_bits());
        assert_eq!(first.im.to_bits(), second.im.to_bits());
    }
}
