//! Haar wavelet summarization — the alternative the paper cites as its
//! sibling technique (STARDUST: "fast stream indexing using incremental
//! wavelet approximations", reference [6]; also SWAT [5]).
//!
//! The Haar transform here uses the orthonormal convention, so Parseval
//! holds and — exactly as for the truncated DFT — the Euclidean distance
//! between two signals' retained coefficient prefixes lower-bounds the
//! distance between the signals. Swapping the summarizer therefore
//! preserves the middleware's no-false-dismissal guarantee; the comparison
//! between DFT and Haar energy capture runs as an ablation bench.

use serde::{Deserialize, Serialize};

/// Forward orthonormal Haar transform (power-of-two length).
///
/// Output layout is the standard multiresolution order: overall average
/// first, then detail coefficients coarsest-to-finest.
///
/// # Panics
/// Panics unless the length is a power of two (or zero).
pub fn haar_forward(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(n & (n - 1) == 0, "Haar transform requires a power-of-two length");
    let mut cur = signal.to_vec();
    let mut out = vec![0.0; n];
    let mut len = n;
    let s = std::f64::consts::FRAC_1_SQRT_2;
    while len > 1 {
        let half = len / 2;
        let mut next = vec![0.0; half];
        for i in 0..half {
            next[i] = (cur[2 * i] + cur[2 * i + 1]) * s;
            out[half + i] = (cur[2 * i] - cur[2 * i + 1]) * s;
        }
        cur = next;
        len = half;
    }
    out[0] = cur[0];
    out
}

/// Inverse orthonormal Haar transform.
///
/// # Panics
/// Panics unless the length is a power of two (or zero).
pub fn haar_inverse(coeffs: &[f64]) -> Vec<f64> {
    let n = coeffs.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(n & (n - 1) == 0, "Haar transform requires a power-of-two length");
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let mut cur = vec![coeffs[0]];
    let mut half = 1;
    while half < n {
        let mut next = vec![0.0; half * 2];
        for i in 0..half {
            let a = cur[i];
            let d = coeffs[half + i];
            next[2 * i] = (a + d) * s;
            next[2 * i + 1] = (a - d) * s;
        }
        cur = next;
        half *= 2;
    }
    cur
}

/// A sparse Haar synopsis: the `k` largest-magnitude coefficients, stored
/// as `(position, value)` pairs — the STARDUST-style summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HaarSynopsis {
    /// Signal length the synopsis describes.
    pub len: usize,
    /// Retained `(coefficient index, value)` pairs, by descending |value|.
    pub coeffs: Vec<(usize, f64)>,
}

impl HaarSynopsis {
    /// Builds the top-`k` synopsis of a power-of-two-length signal.
    pub fn build(signal: &[f64], k: usize) -> Self {
        let spectrum = haar_forward(signal);
        let mut indexed: Vec<(usize, f64)> = spectrum.into_iter().enumerate().collect();
        indexed.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
        indexed.truncate(k);
        HaarSynopsis { len: signal.len(), coeffs: indexed }
    }

    /// Reconstructs the approximate signal.
    pub fn reconstruct(&self) -> Vec<f64> {
        let mut spectrum = vec![0.0; self.len];
        for &(i, v) in &self.coeffs {
            spectrum[i] = v;
        }
        haar_inverse(&spectrum)
    }

    /// Energy captured by the retained coefficients (Parseval).
    pub fn energy(&self) -> f64 {
        self.coeffs.iter().map(|(_, v)| v * v).sum()
    }

    /// Lower-bounding distance between two synopses of the same length:
    /// compares coefficients over the union of retained positions, treating
    /// missing ones as zero. Never exceeds the true signal distance when
    /// both synopses keep the same positions; with top-k selection it is a
    /// heuristic distance (still useful for candidate generation).
    pub fn distance(&self, other: &HaarSynopsis) -> f64 {
        assert_eq!(self.len, other.len, "synopsis length mismatch");
        let mut acc = 0.0;
        for &(i, v) in &self.coeffs {
            let o = other.coeffs.iter().find(|(j, _)| *j == i).map_or(0.0, |(_, x)| *x);
            acc += (v - o) * (v - o);
        }
        for &(j, o) in &other.coeffs {
            if !self.coeffs.iter().any(|(i, _)| *i == j) {
                acc += o * o;
            }
        }
        acc.sqrt()
    }
}

/// Fraction of a signal's energy captured by its first `k` *fixed-prefix*
/// coefficients under a transform — the summarizer-quality metric the
/// DFT-vs-Haar ablation reports.
pub fn prefix_energy_fraction(spectrum_energy_prefix: f64, total_energy: f64) -> f64 {
    if total_energy <= 0.0 {
        1.0
    } else {
        (spectrum_energy_prefix / total_energy).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn energy(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum()
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin() * 3.0 + i as f64 * 0.1).collect();
        let back = haar_inverse(&haar_forward(&x));
        for (a, b) in x.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn parseval_holds() {
        let x: Vec<f64> = (0..64).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let h = haar_forward(&x);
        assert!((energy(&x) - energy(&h)).abs() < 1e-9);
    }

    #[test]
    fn constant_signal_is_pure_average() {
        let h = haar_forward(&[5.0; 16]);
        assert!((h[0] - 5.0 * 4.0).abs() < 1e-12); // 5 * sqrt(16)
        assert!(h[1..].iter().all(|&d| d.abs() < 1e-12));
    }

    #[test]
    fn step_signal_is_sparse_in_haar() {
        // A step function needs very few Haar coefficients.
        let x: Vec<f64> = (0..32).map(|i| if i < 16 { 1.0 } else { -1.0 }).collect();
        let syn = HaarSynopsis::build(&x, 2);
        let rec = syn.reconstruct();
        let err: f64 = x.iter().zip(rec.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!(err < 1e-12, "step should be captured by 2 coefficients, err {err}");
    }

    #[test]
    fn topk_energy_is_monotone_in_k() {
        let x: Vec<f64> =
            (0..64).map(|i| (i as f64 * 0.3).sin() + 0.3 * (i as f64 * 1.9).cos()).collect();
        let mut prev = 0.0;
        for k in [1usize, 2, 4, 8, 16, 64] {
            let e = HaarSynopsis::build(&x, k).energy();
            assert!(e + 1e-12 >= prev, "energy must grow with k");
            prev = e;
        }
        assert!((prev - energy(&x)).abs() < 1e-9, "full synopsis is lossless");
    }

    #[test]
    fn reconstruction_error_shrinks_with_k() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.17).sin() * 2.0 + (i % 5) as f64).collect();
        let err = |k: usize| {
            let rec = HaarSynopsis::build(&x, k).reconstruct();
            x.iter().zip(rec.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
        };
        assert!(err(16) <= err(4));
        assert!(err(4) <= err(1));
    }

    #[test]
    fn synopsis_distance_of_identical_signals_is_zero() {
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let a = HaarSynopsis::build(&x, 4);
        assert!(a.distance(&a) < 1e-12);
    }

    #[test]
    fn synopsis_distance_detects_difference() {
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..16).map(|i| -(i as f64)).collect();
        let a = HaarSynopsis::build(&x, 4);
        let b = HaarSynopsis::build(&y, 4);
        assert!(a.distance(&b) > 1.0);
    }

    #[test]
    fn empty_and_single() {
        assert!(haar_forward(&[]).is_empty());
        assert_eq!(haar_forward(&[3.0]), vec![3.0]);
        assert_eq!(haar_inverse(&[3.0]), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_panics() {
        let _ = haar_forward(&[1.0, 2.0, 3.0]);
    }
}
