//! Stream normalization (paper Eq. 1 and Eq. 2) and incremental sliding
//! window statistics.
//!
//! Both normalizations map a window onto the unit hyper-sphere, which is what
//! bounds every DFT coefficient's real part into `[-1, +1]` and makes the
//! Eq. 6 key mapping total:
//!
//! * **z-normalization** (correlation queries): subtract the mean, divide by
//!   `sigma * sqrt(w)`. The correlation between two streams reduces to the
//!   Euclidean distance between their z-normalized windows.
//! * **unit-norm normalization** (subsequence queries): divide by the L2
//!   norm.

use serde::{Deserialize, Serialize};

/// Which normalization a stream (and the queries against it) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Normalization {
    /// Eq. 1: `(x_i - mean) / (sigma * sqrt(w))` — zero mean, unit energy.
    ZNorm,
    /// Eq. 2: `x_i / ||x||` — unit energy.
    UnitNorm,
}

/// z-normalizes a window: zero mean, unit energy (Eq. 1).
///
/// A constant window (zero variance) maps to the all-zero vector.
pub fn z_normalize(window: &[f64]) -> Vec<f64> {
    let w = window.len();
    if w == 0 {
        return Vec::new();
    }
    let mean = window.iter().sum::<f64>() / w as f64;
    let var = window.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / w as f64;
    let sigma = var.sqrt();
    if sigma <= f64::EPSILON {
        return vec![0.0; w];
    }
    let denom = sigma * (w as f64).sqrt();
    window.iter().map(|x| (x - mean) / denom).collect()
}

/// Unit-norm normalizes a window: unit energy (Eq. 2).
///
/// The all-zero window maps to itself.
pub fn unit_normalize(window: &[f64]) -> Vec<f64> {
    let norm = window.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm <= f64::EPSILON {
        return vec![0.0; window.len()];
    }
    window.iter().map(|x| x / norm).collect()
}

/// Applies the selected normalization.
pub fn normalize(window: &[f64], mode: Normalization) -> Vec<f64> {
    match mode {
        Normalization::ZNorm => z_normalize(window),
        Normalization::UnitNorm => unit_normalize(window),
    }
}

/// Incrementally maintained sum / sum-of-squares over a sliding window.
///
/// Fed the same `(new, evicted)` pairs as the sliding DFT; gives O(1) access
/// to the mean, population variance, and L2 norm the normalizations need.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SlidingStats {
    sum: f64,
    sum_sq: f64,
    count: usize,
}

impl SlidingStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts for a new value entering and (optionally) an old value
    /// leaving the window.
    pub fn update(&mut self, new: f64, evicted: Option<f64>) {
        self.sum += new;
        self.sum_sq += new * new;
        if let Some(old) = evicted {
            self.sum -= old;
            self.sum_sq -= old * old;
        } else {
            self.count += 1;
        }
    }

    /// Number of values currently covered.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Window mean.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance (clamped at zero against rounding drift).
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.count as f64 - m * m).max(0.0)
    }

    /// Population standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// L2 norm of the window contents.
    #[inline]
    pub fn l2_norm(&self) -> f64 {
        self.sum_sq.max(0.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn energy(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum()
    }

    #[test]
    fn z_normalized_has_zero_mean_unit_energy() {
        let x = vec![3.0, 7.0, 1.0, 5.0, 9.0, 2.0];
        let z = z_normalize(&x);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((energy(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unit_normalized_has_unit_energy() {
        let x = vec![3.0, -4.0, 12.0];
        let u = unit_normalize(&x);
        assert!((energy(&u) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_window_z_normalizes_to_zero() {
        let z = z_normalize(&[5.0; 8]);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_window_unit_normalizes_to_zero() {
        let u = unit_normalize(&[0.0; 4]);
        assert!(u.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn z_norm_invariant_to_shift_and_scale() {
        let x = vec![1.0, 4.0, 2.0, 8.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 10.0).collect();
        let zx = z_normalize(&x);
        let zy = z_normalize(&y);
        for (a, b) in zx.iter().zip(zy.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn correlation_distance_identity() {
        // For z-normalized (unit-energy) windows, corr = 1 - d^2 / 2.
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let y = vec![2.0, 4.0, 6.0, 8.0, 10.0]; // perfectly correlated
        let zx = z_normalize(&x);
        let zy = z_normalize(&y);
        let d2: f64 = zx.iter().zip(zy.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
        let corr = 1.0 - d2 / 2.0;
        assert!((corr - 1.0).abs() < 1e-12);

        let yneg: Vec<f64> = x.iter().map(|v| -v).collect();
        let zn = z_normalize(&yneg);
        let d2n: f64 = zx.iter().zip(zn.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!(((1.0 - d2n / 2.0) + 1.0).abs() < 1e-12, "anti-correlated => corr -1");
    }

    #[test]
    fn sliding_stats_match_batch() {
        let xs: Vec<f64> = (0..50).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let w = 8usize;
        let mut stats = SlidingStats::new();
        let mut win = crate::window::SlidingWindow::new(w);
        for (i, &x) in xs.iter().enumerate() {
            let ev = win.push(x);
            stats.update(x, ev);
            if i + 1 >= w {
                let cur = win.to_vec();
                let mean = cur.iter().sum::<f64>() / w as f64;
                let var = cur.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / w as f64;
                assert!((stats.mean() - mean).abs() < 1e-9);
                assert!((stats.variance() - var).abs() < 1e-9);
                assert!((stats.l2_norm() - energy(&cur).sqrt()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(z_normalize(&[]).is_empty());
        assert!(unit_normalize(&[]).is_empty());
        let s = SlidingStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }
}
