//! Fixed-capacity ring-buffer sliding window (the paper's "most recent `w`
//! values of each stream").

use serde::{Deserialize, Serialize};

/// A sliding window over the last `capacity` values of a stream.
///
/// Until the window fills, [`SlidingWindow::is_full`] is false and feature
/// extraction is not yet meaningful; after that, every push evicts the oldest
/// value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlidingWindow {
    buf: Vec<f64>,
    head: usize,
    len: usize,
}

impl SlidingWindow {
    /// Creates an empty window holding up to `capacity` values.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow { buf: vec![0.0; capacity], head: 0, len: 0 }
    }

    /// Window capacity `w`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Number of values currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no values have been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True once `capacity` values have been pushed.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    /// Pushes a new value, returning the evicted oldest value if the window
    /// was already full.
    pub fn push(&mut self, value: f64) -> Option<f64> {
        let cap = self.buf.len();
        if self.len < cap {
            let idx = (self.head + self.len) % cap;
            self.buf[idx] = value;
            self.len += 1;
            None
        } else {
            let old = self.buf[self.head];
            self.buf[self.head] = value;
            self.head = (self.head + 1) % cap;
            Some(old)
        }
    }

    /// The oldest value in the window.
    pub fn front(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.buf[self.head])
        }
    }

    /// The most recent value in the window.
    pub fn back(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.buf[(self.head + self.len - 1) % self.buf.len()])
        }
    }

    /// Value at logical position `i` (0 = oldest).
    pub fn get(&self, i: usize) -> Option<f64> {
        if i < self.len {
            Some(self.buf[(self.head + i) % self.buf.len()])
        } else {
            None
        }
    }

    /// Copies the window contents, oldest first.
    pub fn to_vec(&self) -> Vec<f64> {
        (0..self.len).map(|i| self.get(i).unwrap()).collect()
    }

    /// Iterates oldest-to-newest.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len).map(move |i| self.get(i).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_evicts_fifo() {
        let mut w = SlidingWindow::new(3);
        assert_eq!(w.push(1.0), None);
        assert_eq!(w.push(2.0), None);
        assert!(!w.is_full());
        assert_eq!(w.push(3.0), None);
        assert!(w.is_full());
        assert_eq!(w.push(4.0), Some(1.0));
        assert_eq!(w.push(5.0), Some(2.0));
        assert_eq!(w.to_vec(), vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn front_back_get() {
        let mut w = SlidingWindow::new(4);
        assert_eq!(w.front(), None);
        assert_eq!(w.back(), None);
        for i in 0..6 {
            w.push(i as f64);
        }
        assert_eq!(w.front(), Some(2.0));
        assert_eq!(w.back(), Some(5.0));
        assert_eq!(w.get(1), Some(3.0));
        assert_eq!(w.get(4), None);
    }

    #[test]
    fn iter_matches_to_vec() {
        let mut w = SlidingWindow::new(5);
        for i in 0..13 {
            w.push(i as f64 * 1.5);
        }
        let v: Vec<f64> = w.iter().collect();
        assert_eq!(v, w.to_vec());
        assert_eq!(v.len(), 5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    fn long_wraparound_is_consistent() {
        let mut w = SlidingWindow::new(7);
        for i in 0..1000u32 {
            w.push(i as f64);
        }
        assert_eq!(w.to_vec(), (993..1000).map(|i| i as f64).collect::<Vec<_>>());
    }
}
