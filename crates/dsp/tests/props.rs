//! Property-based tests of the signal-processing substrate's invariants.

use dsi_dsp::complex::Complex64;
use dsi_dsp::dft::{dft, energy, idft, spectrum_energy};
use dsi_dsp::fft::{fft, ifft};
use dsi_dsp::wavelet::{haar_forward, haar_inverse, HaarSynopsis};
use dsi_dsp::{Mbr, SlidingStats, SlidingWindow};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    -1e3f64..1e3
}

fn complex() -> impl Strategy<Value = Complex64> {
    (finite_f64(), finite_f64()).prop_map(|(re, im)| Complex64::new(re, im))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ----- Complex arithmetic: field-like axioms up to rounding -----

    #[test]
    fn complex_addition_commutes(a in complex(), b in complex()) {
        prop_assert!((a + b).approx_eq(b + a, 1e-9));
    }

    #[test]
    fn complex_multiplication_commutes(a in complex(), b in complex()) {
        prop_assert!((a * b).approx_eq(b * a, 1e-6));
    }

    #[test]
    fn complex_distributivity(a in complex(), b in complex(), c in complex()) {
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!(lhs.approx_eq(rhs, 1e-3), "{lhs:?} vs {rhs:?}");
    }

    #[test]
    fn complex_multiplicative_inverse(a in complex()) {
        prop_assume!(a.norm() > 1e-6);
        prop_assert!((a * a.inv()).approx_eq(Complex64::ONE, 1e-6));
    }

    #[test]
    fn conjugation_is_multiplicative(a in complex(), b in complex()) {
        prop_assert!((a * b).conj().approx_eq(a.conj() * b.conj(), 1e-4));
    }

    // ----- Transforms -----

    #[test]
    fn dft_roundtrip(x in prop::collection::vec(finite_f64(), 1..48)) {
        let back = idft(&dft(&x));
        for (orig, rec) in x.iter().zip(back.iter()) {
            prop_assert!((orig - rec.re).abs() < 1e-6);
            prop_assert!(rec.im.abs() < 1e-6);
        }
    }

    #[test]
    fn dft_preserves_energy(x in prop::collection::vec(finite_f64(), 1..48)) {
        let e1 = energy(&x);
        let e2 = spectrum_energy(&dft(&x));
        prop_assert!((e1 - e2).abs() <= 1e-6 * (1.0 + e1));
    }

    #[test]
    fn fft_equals_dft(x in prop::collection::vec(finite_f64(), 1..6)
            .prop_map(|seed| {
                // Expand to a power-of-two length deterministically.
                let n = 64;
                (0..n).map(|i| seed[i % seed.len()] * ((i / seed.len()) as f64 + 1.0)).collect::<Vec<f64>>()
            })) {
        let a = dft(&x);
        let b = fft(&x);
        for (u, v) in a.iter().zip(b.iter()) {
            prop_assert!(u.approx_eq(*v, 1e-5), "{u:?} vs {v:?}");
        }
    }

    #[test]
    fn fft_roundtrip(x in prop::collection::vec(finite_f64(), 1..5)
            .prop_map(|seed| (0..32).map(|i| seed[i % seed.len()] + i as f64).collect::<Vec<f64>>())) {
        let back = ifft(&fft(&x));
        for (orig, rec) in x.iter().zip(back.iter()) {
            prop_assert!((orig - rec.re).abs() < 1e-7);
        }
    }

    // ----- Haar wavelets -----

    #[test]
    fn haar_roundtrip_and_parseval(x in prop::collection::vec(finite_f64(), 1..5)
            .prop_map(|seed| (0..32).map(|i| seed[i % seed.len()] * (1.0 + (i % 3) as f64)).collect::<Vec<f64>>())) {
        let h = haar_forward(&x);
        prop_assert!((energy(&x) - energy(&h)).abs() <= 1e-6 * (1.0 + energy(&x)));
        let back = haar_inverse(&h);
        for (a, b) in x.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn haar_topk_energy_bounded(
        x in prop::collection::vec(finite_f64(), 1..5)
            .prop_map(|seed| (0..16).map(|i| seed[i % seed.len()] - 2.0 * (i as f64)).collect::<Vec<f64>>()),
        k in 1usize..16,
    ) {
        let syn = HaarSynopsis::build(&x, k);
        prop_assert!(syn.energy() <= energy(&x) + 1e-6);
        prop_assert!(syn.coeffs.len() <= k);
    }

    // ----- Sliding window vs a reference deque -----

    #[test]
    fn sliding_window_matches_vecdeque(
        cap in 1usize..16,
        xs in prop::collection::vec(finite_f64(), 0..80),
    ) {
        let mut win = SlidingWindow::new(cap);
        let mut reference = std::collections::VecDeque::new();
        for &x in &xs {
            let evicted = win.push(x);
            reference.push_back(x);
            let expect_evicted = if reference.len() > cap { reference.pop_front() } else { None };
            prop_assert_eq!(evicted, expect_evicted);
            prop_assert_eq!(win.to_vec(), reference.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(win.front(), reference.front().copied());
            prop_assert_eq!(win.back(), reference.back().copied());
        }
    }

    // ----- Incremental statistics -----

    #[test]
    fn sliding_stats_match_batch(
        cap in 1usize..12,
        xs in prop::collection::vec(-50.0f64..50.0, 1..60),
    ) {
        let mut stats = SlidingStats::new();
        let mut win = SlidingWindow::new(cap);
        for &x in &xs {
            let ev = win.push(x);
            stats.update(x, ev);
            let cur = win.to_vec();
            let mean = cur.iter().sum::<f64>() / cur.len() as f64;
            let var = cur.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / cur.len() as f64;
            prop_assert!((stats.mean() - mean).abs() < 1e-6);
            prop_assert!((stats.variance() - var).abs() < 1e-5);
        }
    }

    // ----- MBR geometry -----

    #[test]
    fn mbr_bounds_and_min_dist(
        points in prop::collection::vec((finite_f64(), finite_f64()), 1..10),
        q in (finite_f64(), finite_f64()),
    ) {
        let mut mbr = Mbr::from_point(&[points[0].0, points[0].1]);
        for &(a, b) in &points[1..] {
            mbr.extend_point(&[a, b]);
        }
        let qp = [q.0, q.1];
        // min_dist lower-bounds the distance to every contained point.
        for &(a, b) in &points {
            prop_assert!(mbr.contains(&[a, b]));
            let d = ((qp[0] - a).powi(2) + (qp[1] - b).powi(2)).sqrt();
            prop_assert!(mbr.min_dist(&qp) <= d + 1e-9);
        }
        // Inside the box the distance is zero.
        let c = mbr.center();
        prop_assert!(mbr.min_dist(&c) < 1e-9);
    }

    #[test]
    fn mbr_union_contains_both(
        a in prop::collection::vec((finite_f64(), finite_f64()), 1..6),
        b in prop::collection::vec((finite_f64(), finite_f64()), 1..6),
    ) {
        let build = |pts: &[(f64, f64)]| {
            let mut m = Mbr::from_point(&[pts[0].0, pts[0].1]);
            for &(x, y) in &pts[1..] {
                m.extend_point(&[x, y]);
            }
            m
        };
        let ma = build(&a);
        let mb = build(&b);
        let mut u = ma.clone();
        u.extend_mbr(&mb);
        for &(x, y) in a.iter().chain(b.iter()) {
            prop_assert!(u.contains(&[x, y]));
        }
        prop_assert!(u.intersects(&ma) && u.intersects(&mb));
    }
}
