//! Network / host monitoring — the paper's "which links or routers have
//! been experiencing significant fluctuations?" scenario.
//!
//! Hosts export load streams (synthetic CMU Host Load-style traces). Two of
//! them suffer a synchronized burst storm; a continuous subsequence query
//! subscribed to the burst pattern flags exactly those hosts.
//!
//! Run with: `cargo run --example network_monitoring`

use dsindex::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let window = 32usize;
    let mut cfg = ClusterConfig::new(24);
    cfg.workload.window_len = window;
    cfg.workload.num_coeffs = 2;
    cfg.workload.mbr_batch = 4;
    cfg.kind = SimilarityKind::Subsequence;
    let mut cluster = Cluster::new(cfg);

    let mut rng = StdRng::seed_from_u64(1997); // vintage of the CMU traces
    let hosts = 12usize;
    let streams: Vec<StreamId> =
        (0..hosts).map(|i| cluster.register_stream(&format!("host-{i:02}"), i)).collect();
    let mut loads: Vec<HostLoad> = (0..hosts).map(|_| HostLoad::standard()).collect();

    // 100 samples of background load per host; hosts 4 and 9 then get a
    // synchronized burst storm (a saw-tooth of arriving jobs).
    let stormy = [4usize, 9];
    for step in 0..130u64 {
        let now = SimTime::from_ms(step * 250);
        for (i, &sid) in streams.iter().enumerate() {
            let mut v = loads[i].next_value(&mut rng);
            if stormy.contains(&i) && step >= 98 {
                let phase = (step - 98) % 8;
                v += 3.0 - 0.35 * phase as f64; // repeating burst + decay
            }
            cluster.post_value(sid, v, now);
        }
    }
    let t = SimTime::from_ms(130 * 250);

    // The operator subscribes to the storm fingerprint: the current window
    // of a known-stormy reference host (host 4).
    let pattern = cluster.streams()[stormy[0]].extractor.window_snapshot();
    let qid = cluster.post_similarity_query(0, pattern, 0.2, 120_000, t);
    cluster.notify_all(t + 2000);

    println!("hosts matching the burst-storm fingerprint (radius 0.2):");
    let mut flagged: Vec<usize> =
        cluster.notifications(qid).iter().map(|n| n.stream as usize).collect();
    flagged.sort_unstable();
    flagged.dedup();
    for &h in &flagged {
        println!("  host-{h:02} {}", if stormy.contains(&h) { "<- storm injected" } else { "" });
    }

    for s in stormy {
        assert!(flagged.contains(&s), "storm host {s} must be flagged");
    }
    println!(
        "\nflagged {} of {} hosts; index produced {} candidates before verification",
        flagged.len(),
        hosts,
        cluster.quality().candidates
    );
}
