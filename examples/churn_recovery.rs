//! Churn tolerance of the routing substrate — the paper's claim that the
//! middleware "accommodates dynamic changes such as data center failures
//! ... without the need to temporarily block the normal system operation".
//!
//! Builds a 64-node Chord ring, crashes a batch of nodes, shows that
//! lookups keep resolving correctly through successor lists, then runs
//! stabilization until the ring is fully consistent again and admits new
//! joiners.
//!
//! Run with: `cargo run --example churn_recovery`

use dsindex::chord::{IdSpace, Ring};

fn main() {
    let space = IdSpace::new(16);
    let ids: Vec<u64> = (0..64u64).map(|i| space.hash_str(&format!("dc-{i}"))).collect();
    let mut ring = Ring::with_nodes(space, ids.iter().copied());
    println!("ring: {} nodes, m = {} bits", ring.len(), space.bits());

    let probe_keys: Vec<u64> = (0..40u64).map(|i| space.reduce(i * 1571 + 99)).collect();
    let hops_before: f64 =
        probe_keys.iter().map(|&k| ring.lookup(ids[0], k).hops() as f64).sum::<f64>()
            / probe_keys.len() as f64;
    println!("average lookup hops before churn: {hops_before:.2}");

    // Crash 8 nodes at once (no goodbye).
    let victims: Vec<u64> = ids.iter().copied().skip(3).step_by(8).collect();
    for &v in &victims {
        ring.crash(v);
    }
    println!("crashed {} nodes abruptly", victims.len());

    // Lookups still resolve to the true successors, right away.
    let origin = ids.iter().copied().find(|n| ring.contains(*n)).expect("a survivor");
    let mut correct = 0;
    for &k in &probe_keys {
        if ring.lookup(origin, k).owner == ring.ideal_successor(k).unwrap() {
            correct += 1;
        }
    }
    println!(
        "immediately after the crash: {correct}/{} lookups correct (successor lists at work)",
        probe_keys.len()
    );
    assert_eq!(correct, probe_keys.len(), "fault tolerance failed");

    // Stabilize until consistent.
    let mut rounds = 0;
    while !ring.is_fully_consistent() {
        ring.stabilize_round();
        ring.fix_fingers_round();
        rounds += 1;
        assert!(rounds < 32, "stabilization failed to converge");
    }
    println!("ring fully consistent again after {rounds} stabilization round(s)");

    // New data centers join through a live bootstrap node.
    for i in 0..4 {
        let newcomer = space.hash_str(&format!("late-dc-{i}"));
        if !ring.contains(newcomer) {
            ring.join(newcomer, origin);
        }
    }
    for _ in 0..4 {
        ring.stabilize_round();
        ring.fix_fingers_round();
    }
    assert!(ring.is_fully_consistent());
    println!("4 newcomers joined; ring consistent with {} nodes", ring.len());

    let hops_after: f64 =
        probe_keys.iter().map(|&k| ring.lookup(origin, k).hops() as f64).sum::<f64>()
            / probe_keys.len() as f64;
    println!("average lookup hops after recovery: {hops_after:.2} (O(log N) preserved)");
}
