//! Variable-selectivity queries over the §VI-B cluster hierarchy.
//!
//! A radius-0.5 similarity query would flood half the flat ring; the
//! hierarchical index escalates it up a logarithmic chain of cluster
//! leaders instead. This example contrasts the two message bills on the
//! same 81-node system.
//!
//! Run with: `cargo run --example wide_queries`

use dsindex::chord::{covering_nodes, IdSpace, RangeStrategy, Ring};
use dsindex::core::{radius_key_range, summary_key, SimilarityKind, SimilarityQuery};
use dsindex::dsp::{extract_features, Normalization};
use dsindex::hierarchy::{HierarchicalIndex, Hierarchy};
use dsindex::prelude::SimTime;

fn window(level: f64) -> Vec<f64> {
    (0..32).map(|i| level + (i as f64 * 0.5 + level).sin()).collect()
}

fn main() {
    let space = IdSpace::new(20);
    let ids: Vec<u64> = (0..81u64).map(|i| space.hash_str(&format!("dc-{i}"))).collect();
    let ring = Ring::with_nodes(space, ids.iter().copied());
    let hierarchy = Hierarchy::build(&ids, 3);
    println!("81 data centers, bottom clusters of 3, {} hierarchy levels", hierarchy.num_levels());
    let mut index = HierarchicalIndex::new(hierarchy, space);

    // One stream per data center, feature levels spread over the space.
    // Each summary enters the hierarchy at the node covering its feature
    // key — exactly where the flat index stores it.
    for i in 0..ids.len() {
        let level = -0.8 + 1.6 * (i as f64 / 80.0);
        let fv = extract_features(&window(level), Normalization::UnitNorm, 2);
        let entry = index.covering_node(summary_key(space, &fv));
        index.propagate_summary(entry, i as u32, &fv.to_reals());
    }
    println!(
        "propagated 81 summaries: {} upward messages, {} suppressed",
        index.update_messages, index.updates_suppressed
    );

    for radius in [0.05, 0.2, 0.5] {
        let q = SimilarityQuery::from_target(
            1,
            ids[0],
            window(0.1),
            radius,
            SimilarityKind::Subsequence,
            2,
            0,
            SimTime::from_secs(600),
        );

        // Flat §IV-C cost: every node covering [h(q1-r), h(q1+r)] hears it.
        let (lo, hi) = radius_key_range(space, q.feature.first_real(), radius);
        let flat_nodes = covering_nodes(&ring, lo, hi).len();
        let flat_plan = dsindex::chord::multicast(&ring, ids[0], lo, hi, RangeStrategy::Sequential);

        // Hierarchical cost: escalate to the first leader whose subtree
        // covers the whole query range.
        let ans = index.route_query(&q);
        println!(
            "radius {radius:4}: flat multicast = {:2} msgs over {flat_nodes:2} nodes | \
             hierarchy = {} msgs (level {}), {} candidates",
            flat_plan.total_messages(),
            ans.messages,
            ans.levels_climbed,
            ans.candidates.len()
        );
        if radius >= 0.5 {
            assert!(
                (ans.messages as u32) < flat_plan.total_messages(),
                "hierarchy must beat flooding on wide queries"
            );
        }
    }
}
