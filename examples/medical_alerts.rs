//! Medical sensor alerting — the paper's motivating inner-product example:
//! "Notify when the weighted average of last 20 body temperature
//! measurements of a patient exceed a threshold value!"
//!
//! Patients' temperature streams are indexed; a monitoring station posts a
//! continuous weighted-average query with an alert threshold, resolved
//! through the location service and answered by the stream's source node
//! from its DFT summary (Eq. 7). It also demonstrates point and range
//! queries expressed as inner products (§III-B.1) and the §IV-D
//! location-cache ("remembers the mapping") optimization.
//!
//! Run with: `cargo run --release --example medical_alerts`

use dsindex::prelude::*;

fn main() {
    let window = 32usize;
    let mut cfg = ClusterConfig::new(12);
    cfg.workload.window_len = window;
    cfg.kind = SimilarityKind::Subsequence;
    let mut cluster = Cluster::new(cfg);

    // Three patients; patient 1 spikes a fever in the second half.
    let patients: Vec<StreamId> =
        (0..3).map(|i| cluster.register_stream(&format!("patient-{i}"), i)).collect();
    for step in 0..window as u64 + 20 {
        let now = SimTime::from_ms(step * 500);
        for (i, &sid) in patients.iter().enumerate() {
            let base = 36.6 + 0.1 * (step as f64 * 0.3 + i as f64).sin();
            let fever = if i == 1 && step > 30 { 1.9 } else { 0.0 };
            cluster.post_value(sid, base + fever, now);
        }
    }
    let t = SimTime::from_secs(30);

    // The alerting query: average of the last 20 measurements above 37.5 C.
    let span = 20usize;
    let monitors: Vec<QueryId> = patients
        .iter()
        .map(|&p| {
            let q = InnerProductQuery::range_avg(0, 0, p, window - span..window, SimTime::ZERO)
                .with_alert(AlertCondition::Above(37.5));
            cluster.post_inner_product(5, q, 120_000, t)
        })
        .collect();

    cluster.notify_all(t + 2000);
    println!("weighted-average monitors (threshold 37.5 C):");
    for (i, &qid) in monitors.iter().enumerate() {
        let value = cluster.ip_results(qid).first().map(|(_, v)| *v).unwrap_or(f64::NAN);
        let alerted = !cluster.ip_alerts(qid).is_empty();
        println!(
            "  patient-{i}: {value:.2} C {}",
            if alerted { "ALERT — fever detected" } else { "(normal)" }
        );
    }
    assert!(!cluster.ip_alerts(monitors[1]).is_empty(), "fever patient must alert");
    assert!(cluster.ip_alerts(monitors[0]).is_empty(), "healthy patient must not alert");

    // Point and range queries on the fever patient, as inner products.
    let point = cluster.post_inner_product(
        4,
        InnerProductQuery::point(0, 0, patients[1], window - 1, SimTime::ZERO),
        60_000,
        t + 2500,
    );
    let range_sum = cluster.post_inner_product(
        4,
        InnerProductQuery::range_sum(0, 0, patients[1], 0..4, SimTime::ZERO),
        60_000,
        t + 2500,
    );
    cluster.notify_all(t + 4000);
    let (_, latest) = cluster.ip_results(point)[0];
    let (_, early_sum) = cluster.ip_results(range_sum)[0];
    println!("\npoint query (latest reading of patient-1): {latest:.2} C");
    println!("range-sum query (first 4 in-window readings): {early_sum:.2}");

    // The second query to the same stream hit the §IV-D location cache.
    println!(
        "\nlocation-service lookups avoided by client caching: {}",
        cluster.location_cache_hits()
    );
    assert!(cluster.location_cache_hits() >= 1);
}
