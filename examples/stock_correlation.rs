//! Stock-ticker correlation mining — the paper's opening use case
//! ("find all pairs of companies whose closing prices over the last month
//! correlate within a threshold").
//!
//! Feeds a synthetic S&P 500-style market (sector-correlated tickers) into
//! the distributed index and poses a continuous correlation query anchored
//! at one ticker; sector mates should surface as matches.
//!
//! Run with: `cargo run --example stock_correlation`

use dsindex::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let window = 32usize; // "the last month" of trading days

    let mut cfg = ClusterConfig::new(32);
    cfg.workload.window_len = window;
    cfg.workload.num_coeffs = 3;
    cfg.workload.mbr_batch = 4;
    cfg.workload.mbr_max_width = None;
    cfg.workload.bspan_ms = 120_000; // daily data lives longer than sensor MBRs
    cfg.kind = SimilarityKind::Correlation; // z-normalized windows
    let mut cluster = Cluster::new(cfg);

    // A small market: 6 sectors x 4 tickers, strongly correlated in-sector.
    let mut rng = StdRng::seed_from_u64(2005);
    let market_cfg = MarketConfig {
        sectors: 6,
        tickers_per_sector: 4,
        sector_weight: 0.92,
        ..Default::default()
    };
    let mut market = Market::new(market_cfg);
    let tickers: Vec<String> = market.tickers().to_vec();
    let streams: Vec<StreamId> = tickers
        .iter()
        .enumerate()
        .map(|(i, t)| cluster.register_stream(t, i % cluster.num_nodes()))
        .collect();

    // Replay 90 trading days of closing prices (1 day = 1 simulated second).
    let days = 90u64;
    let mut series = market.closing_series(&mut rng, days as usize);
    for d in 0..days {
        let now = SimTime::from_secs(d);
        for (i, &sid) in streams.iter().enumerate() {
            cluster.post_value(sid, series[i][d as usize], now);
        }
    }
    drop(series.drain(..));
    let t = SimTime::from_secs(days);

    // Correlation threshold 0.6 => distance sqrt(2 * (1 - 0.6)) ~= 0.894
    // between z-normalized windows.
    let threshold = 0.6f64;
    let radius = (2.0 * (1.0 - threshold)).sqrt();

    // Anchor the query at ticker S00T00's current window.
    let anchor = 0usize;
    let target = cluster.streams()[anchor].extractor.window_snapshot();
    let qid = cluster.post_similarity_query(9, target, radius, 600_000, t);
    cluster.notify_all(t + 2);

    println!(
        "query: streams correlating with {} above {threshold} (radius {radius:.3})",
        tickers[anchor]
    );
    let mut matched: Vec<&str> =
        cluster.notifications(qid).iter().map(|n| tickers[n.stream as usize].as_str()).collect();
    matched.sort_unstable();
    matched.dedup();
    for m in &matched {
        let sector_mate = m.starts_with("S00");
        println!("  {} {}", m, if sector_mate { "(same sector)" } else { "" });
    }

    assert!(matched.contains(&tickers[anchor].as_str()), "anchor matches itself");
    let mates = matched.iter().filter(|m| m.starts_with("S00")).count();
    assert!(mates >= 2, "expected sector mates to correlate, got {matched:?}");

    println!(
        "\n{} matches, {} of them sector mates of {} — candidates produced: {}",
        matched.len(),
        mates,
        tickers[anchor],
        cluster.quality().candidates
    );
}
