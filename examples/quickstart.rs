//! Quickstart: a small sensor network indexed over the DHT.
//!
//! Builds a 16-data-center system, registers temperature sensors, feeds
//! readings, and poses the paper's two query types: a continuous similarity
//! query ("which sensors currently behave like this pattern?") and an
//! inner-product query ("weighted average of the last readings of sensor 2").
//!
//! Run with: `cargo run --example quickstart`

use dsindex::prelude::*;

fn main() {
    // A cluster with the paper's Table I defaults, shrunk to a demo window.
    let mut cfg = ClusterConfig::new(16);
    cfg.workload.window_len = 32;
    cfg.workload.num_coeffs = 2;
    cfg.workload.mbr_batch = 4;
    cfg.kind = SimilarityKind::Subsequence;
    let mut cluster = Cluster::new(cfg);

    // Four temperature sensors; sensors 0 and 1 share a diurnal pattern,
    // 2 is flat, 3 oscillates fast.
    let sensors: Vec<StreamId> =
        (0..4).map(|i| cluster.register_stream(&format!("temp-sensor-{i}"), i)).collect();
    println!("registered {} sensors on a 16-node ring", sensors.len());

    // Feed 60 readings each (one per 200 ms of simulated time).
    for step in 0..60u64 {
        let now = SimTime::from_ms(step * 200);
        for (i, &sid) in sensors.iter().enumerate() {
            let v = match i {
                0 => 20.0 + 3.0 * (step as f64 * 0.2).sin(),
                1 => 21.0 + 3.0 * (step as f64 * 0.2 + 0.1).sin(), // like sensor 0
                2 => 18.5,
                _ => 20.0 + 2.0 * (step as f64 * 1.3).sin(),
            };
            cluster.post_value(sid, v, now);
        }
    }
    let t = SimTime::from_ms(60 * 200);

    // Similarity query: does anything look like sensor 0's current window?
    let pattern = cluster.streams()[0].extractor.window_snapshot();
    let qid = cluster.post_similarity_query(5, pattern, 0.25, 60_000, t);
    cluster.notify_all(t + 2000);

    println!("\nsimilarity query (radius 0.25) against sensor 0's pattern:");
    for n in cluster.notifications(qid) {
        println!("  match: {} at {}", cluster.streams()[n.stream as usize].name, n.at);
    }
    let matched: Vec<StreamId> = cluster.notifications(qid).iter().map(|n| n.stream).collect();
    assert!(matched.contains(&sensors[0]), "sensor 0 must match itself");
    assert!(matched.contains(&sensors[1]), "sensor 1 shares the pattern");

    // Inner-product query: average of the 8 most recent readings of sensor 2
    // (resolved through the location service, answered from the summary).
    let qip = cluster.post_inner_product_query(
        7,
        sensors[2],
        (24..32).collect(),
        vec![1.0 / 8.0; 8],
        60_000,
        t,
    );
    cluster.notify_all(t + 4000);
    println!("\ninner-product query (avg of last 8 readings of sensor 2):");
    for (at, value) in cluster.ip_results(qip) {
        println!("  pushed at {at}: {value:.3} (true value 18.5)");
        assert!((value - 18.5).abs() < 0.5, "approximation off: {value}");
    }

    println!("\nquality: {:?}", cluster.quality());
    println!("done.");
}
