//! Golden-report regression: a pinned-seed experiment must reproduce the
//! checked-in `results/golden_report.json` byte for byte.
//!
//! This freezes the full measurement pipeline — workload generation,
//! summarization, routing, replication, aggregation and the report
//! serialization itself. Any change that shifts a single counter or hop
//! shows up as a diff of the golden file, which is exactly the review
//! surface such a change deserves.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_report
//! git diff results/golden_report.json   # review, then commit
//! ```

use dsi_chord::RangeStrategy;
use dsi_core::{run_experiment, ExperimentConfig, SimilarityKind};
use dsi_streamgen::WorkloadConfig;

/// The pinned configuration. Changing anything here invalidates the golden
/// file — regenerate and commit the diff together with the change.
fn golden_cfg() -> ExperimentConfig {
    let workload = WorkloadConfig { window_len: 32, ..WorkloadConfig::default() };
    ExperimentConfig {
        num_nodes: 15,
        workload,
        seed: 20_050_404, // the paper's conference date, for flavor
        id_bits: 32,
        strategy: RangeStrategy::Sequential,
        kind: SimilarityKind::Subsequence,
        warmup_ms: 12_000,
        measure_ms: 20_000,
        inner_product_fraction: 0.0,
    }
}

#[test]
fn pinned_seed_reproduces_golden_report() {
    let report = run_experiment(&golden_cfg());
    let rendered = serde_json::to_string_pretty(&report).expect("serialize report");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/golden_report.json");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(path, &rendered).expect("write golden report");
        return;
    }

    let golden = include_str!("../results/golden_report.json");
    assert_eq!(
        rendered, golden,
        "report drifted from results/golden_report.json; if the change is \
         intentional, regenerate with GOLDEN_REGEN=1 and commit the diff"
    );
}
