//! Cross-crate property-based tests (proptest) on the invariants the whole
//! design rests on: the lower-bounding guarantee, the key mapping, sliding
//! DFT equivalence, multicast coverage, and SHA-1 streaming.

use dsindex::chord::{covering_nodes, IdSpace, RangeStrategy, Ring, Sha1};
use dsindex::core::{feature_to_key, radius_key_range};
use dsindex::dsp::{
    extract_features, normalized_distance, FeatureExtractor, Normalization, SlidingWindow,
};
use proptest::prelude::*;

fn window_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Eq. 9: the truncated-DFT feature distance never exceeds the exact
    /// distance between normalized windows — the no-false-dismissal core.
    #[test]
    fn feature_distance_lower_bounds_exact_distance(
        a in window_strategy(32),
        b in window_strategy(32),
        k in 1usize..6,
        znorm in any::<bool>(),
    ) {
        let mode = if znorm { Normalization::ZNorm } else { Normalization::UnitNorm };
        let fa = extract_features(&a, mode, k);
        let fb = extract_features(&b, mode, k);
        let lower = fa.distance(&fb);
        let exact = normalized_distance(&a, &b, mode);
        prop_assert!(lower <= exact + 1e-9, "lower {lower} > exact {exact}");
    }

    /// The incremental extractor equals batch extraction at every step.
    #[test]
    fn incremental_extraction_matches_batch(
        xs in window_strategy(48),
        znorm in any::<bool>(),
    ) {
        let (w, k) = (16usize, 3usize);
        let mode = if znorm { Normalization::ZNorm } else { Normalization::UnitNorm };
        let mut ex = FeatureExtractor::new(w, k, mode);
        let mut win = SlidingWindow::new(w);
        for &x in &xs {
            win.push(x);
            if let Some(fv) = ex.update(x) {
                let batch = extract_features(&win.to_vec(), mode, k);
                for (u, v) in fv.coeffs().iter().zip(batch.coeffs().iter()) {
                    prop_assert!(u.approx_eq(*v, 1e-6), "{u:?} vs {v:?}");
                }
            }
        }
    }

    /// Eq. 6 mapping: monotone over [-1, 1], endpoints at 0 and 2^m - 1,
    /// and always a valid identifier.
    #[test]
    fn eq6_mapping_is_monotone_and_total(
        mut a in -1.0f64..1.0,
        mut b in -1.0f64..1.0,
        bits in 3u32..40,
    ) {
        if a > b { std::mem::swap(&mut a, &mut b); }
        let space = IdSpace::new(bits);
        let ka = feature_to_key(space, a);
        let kb = feature_to_key(space, b);
        prop_assert!(ka <= kb, "monotonicity violated: {a}->{ka}, {b}->{kb}");
        prop_assert!(kb < space.modulus());
        prop_assert_eq!(feature_to_key(space, -1.0), 0);
        prop_assert_eq!(feature_to_key(space, 1.0), space.modulus() - 1);
    }

    /// A query's key range always contains its center's key, and any
    /// feature within the radius maps inside the range.
    #[test]
    fn radius_range_contains_all_reachable_features(
        center in -1.0f64..1.0,
        radius in 0.0f64..0.5,
        offset in -1.0f64..1.0,
        bits in 8u32..32,
    ) {
        let space = IdSpace::new(bits);
        let (lo, hi) = radius_key_range(space, center, radius);
        prop_assert!(lo <= hi);
        let f = (center + offset * radius).clamp(-1.0, 1.0);
        let kf = feature_to_key(space, f);
        prop_assert!(kf >= lo && kf <= hi,
            "feature {f} (key {kf}) escaped range [{lo}, {hi}]");
    }

    /// Lookup from any node agrees with the ground-truth successor, and the
    /// path length stays within the Chord bound.
    #[test]
    fn lookup_agrees_with_ground_truth(
        seed_ids in prop::collection::btree_set(0u64..4096, 2..40),
        key in 0u64..4096,
    ) {
        let space = IdSpace::new(12);
        let ids: Vec<u64> = seed_ids.into_iter().collect();
        let ring = Ring::with_nodes(space, ids.iter().copied());
        for &from in ids.iter().take(5) {
            let l = ring.lookup(from, key);
            prop_assert_eq!(l.owner, ring.ideal_successor(key).unwrap());
            prop_assert!(l.hops() as usize <= ids.len() + 12);
        }
    }

    /// Range multicast covers exactly the owners of the keys in the range:
    /// sequential and bidirectional agree, and match a brute-force scan.
    #[test]
    fn multicast_covers_exactly_the_range(
        seed_ids in prop::collection::btree_set(0u64..1024, 3..24),
        lo in 0u64..1024,
        width in 0u64..512,
    ) {
        let space = IdSpace::new(10);
        let ids: Vec<u64> = seed_ids.into_iter().collect();
        let ring = Ring::with_nodes(space, ids.iter().copied());
        let hi = space.add(lo, width);
        // Brute force: the owner of every key in [lo, hi].
        let mut expect: Vec<u64> = (0..=width)
            .map(|d| ring.ideal_successor(space.add(lo, d)).unwrap())
            .collect();
        expect.sort_unstable();
        expect.dedup();
        let mut got = covering_nodes(&ring, lo, hi);
        got.sort_unstable();
        prop_assert_eq!(&got, &expect);
        for strat in [RangeStrategy::Sequential, RangeStrategy::Bidirectional] {
            let mut plan = dsindex::chord::multicast(&ring, ids[0], lo, hi, strat).nodes();
            plan.sort_unstable();
            prop_assert_eq!(&plan, &expect, "strategy {:?}", strat);
        }
    }

    /// Streaming SHA-1 equals one-shot hashing under arbitrary chunking.
    #[test]
    fn sha1_streaming_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..600),
        cuts in prop::collection::vec(0usize..600, 0..6),
    ) {
        let oneshot = dsindex::chord::sha1(&data);
        let mut h = Sha1::new();
        let mut offsets: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        offsets.push(0);
        offsets.push(data.len());
        offsets.sort_unstable();
        offsets.dedup();
        for pair in offsets.windows(2) {
            h.update(&data[pair[0]..pair[1]]);
        }
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// MBR candidate test is a superset filter: any feature vector inside
    /// the batch is within min_dist 0 of the box; any query within radius
    /// of a member passes the box test.
    #[test]
    fn mbr_candidate_test_is_superset(
        windows in prop::collection::vec(window_strategy(16), 2..8),
        target in window_strategy(16),
        radius in 0.01f64..1.0,
    ) {
        let feats: Vec<_> = windows
            .iter()
            .map(|w| extract_features(w, Normalization::UnitNorm, 2))
            .collect();
        let mbr = dsindex::dsp::Mbr::from_features(feats.iter());
        let q = extract_features(&target, Normalization::UnitNorm, 2);
        let qp = q.to_reals();
        for (w, f) in windows.iter().zip(feats.iter()) {
            let exact = normalized_distance(&target, w, Normalization::UnitNorm);
            if exact <= radius {
                prop_assert!(
                    mbr.min_dist(&qp) <= radius + 1e-9,
                    "box test dismissed a true match: exact {exact}, radius {radius}, \
                     feature dist {}", q.distance(f)
                );
            }
        }
    }
}
