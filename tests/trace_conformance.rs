//! Trace-replay conformance: the causal trace captured by `dsi-trace` must
//! agree with every other account of the same run.
//!
//! Four independent cross-checks over the pinned golden scenario:
//!
//! 1. **Observational freedom** — running with tracing enabled produces a
//!    report byte-identical to `results/golden_report.json` (tracing may
//!    never perturb what it observes).
//! 2. **Counter conformance** — per-class message totals, hop sums and hop
//!    counts *reconstructed from the trace alone* equal the middleware's
//!    [`Metrics`] bit for bit.
//! 3. **Coverage conformance** — every traced multicast tree delivers to
//!    exactly the brute-force owner set of its key range on the ring.
//! 4. **Golden digest** — an FNV-1a digest of every record pins the full
//!    trace against `results/golden_trace_digest.json`
//!    (`GOLDEN_REGEN=1` to refresh after an intentional change).
//!
//! On any failure the offending trace is exported to
//! `results/trace-failure.jsonl` and `results/trace-failure.trace.json`
//! (the latter loads in chrome://tracing / ui.perfetto.dev) before the
//! test panics, so CI uploads a browsable timeline of the regression.

use dsi_chord::{ChordId, IdSpace, RangeStrategy};
use dsi_core::{run_experiment_traced, ExperimentConfig, SimilarityKind};
use dsi_simnet::{MsgClass, NUM_CLASSES};
use dsi_streamgen::WorkloadConfig;
use dsi_trace::{
    audit, digest, multicast_delivery_set, validate_causality, write_chrome_trace, write_jsonl,
    TraceRecord,
};
use std::collections::BTreeSet;

/// Same pinned configuration as `tests/golden_report.rs`.
fn golden_cfg() -> ExperimentConfig {
    let workload = WorkloadConfig { window_len: 32, ..WorkloadConfig::default() };
    ExperimentConfig {
        num_nodes: 15,
        workload,
        seed: 20_050_404,
        id_bits: 32,
        strategy: RangeStrategy::Sequential,
        kind: SimilarityKind::Subsequence,
        warmup_ms: 12_000,
        measure_ms: 20_000,
        inner_product_fraction: 0.0,
    }
}

fn class_names() -> Vec<&'static str> {
    MsgClass::ALL.iter().map(|c| c.name()).collect()
}

/// Dump the trace as JSONL + chrome://tracing JSON under `results/` so a
/// failing CI run uploads a loadable timeline, then panic with `errors`.
fn fail_with_artifacts(records: &[TraceRecord], ticks: &[(u64, u64)], errors: &[String]) -> ! {
    let names = class_names();
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/results");
    let jsonl_path = format!("{dir}/trace-failure.jsonl");
    let chrome_path = format!("{dir}/trace-failure.trace.json");
    let mut jsonl = Vec::new();
    let mut chrome = Vec::new();
    write_jsonl(&mut jsonl, records, &names).expect("render jsonl");
    write_chrome_trace(&mut chrome, records, &names, ticks).expect("render chrome trace");
    std::fs::write(&jsonl_path, jsonl).expect("write jsonl artifact");
    std::fs::write(&chrome_path, chrome).expect("write chrome artifact");
    panic!(
        "trace conformance failed ({} violations); timeline exported to {} — \
         load it in chrome://tracing or ui.perfetto.dev:\n  {}",
        errors.len(),
        chrome_path,
        errors.join("\n  ")
    );
}

/// Brute-force covering set: every live node whose owned arc `(pred, n]`
/// intersects the circular key range `[lo, hi]`.
fn brute_force_owners(
    space: IdSpace,
    nodes: &[ChordId],
    lo: ChordId,
    hi: ChordId,
) -> BTreeSet<u64> {
    let mut sorted: Vec<ChordId> = nodes.to_vec();
    sorted.sort_unstable();
    let contains =
        |a: ChordId, b: ChordId, x: ChordId| space.distance_cw(a, x) <= space.distance_cw(a, b);
    let mut owners = BTreeSet::new();
    for (i, &n) in sorted.iter().enumerate() {
        let pred = sorted[(i + sorted.len() - 1) % sorted.len()];
        let own_lo = space.add(pred, 1);
        // Two circular closed intervals intersect iff either contains the
        // other's low endpoint.
        if contains(own_lo, n, lo) || contains(lo, hi, own_lo) {
            owners.insert(n);
        }
    }
    owners
}

#[test]
fn traced_run_conforms_to_metrics_coverage_and_golden_digest() {
    let traced = run_experiment_traced(&golden_cfg(), 1 << 20);
    let records = traced.cluster.tracer().snapshot();
    let metas = traced.cluster.tracer().multicasts().to_vec();
    let mut errors: Vec<String> = Vec::new();

    // 1. Tracing is observationally free: the report matches the golden
    //    file produced by the *untraced* pipeline, byte for byte.
    let rendered = serde_json::to_string_pretty(&traced.report).expect("serialize report");
    let golden = include_str!("../results/golden_report.json");
    if rendered != golden {
        errors.push("traced report differs from results/golden_report.json".to_string());
    }

    // The capacity must never be the binding constraint on this scenario —
    // a lossy trace cannot be audited.
    if traced.cluster.tracer().dropped() != 0 {
        errors.push(format!(
            "ring buffer overflowed: {} records dropped",
            traced.cluster.tracer().dropped()
        ));
    }

    if let Err(e) = validate_causality(records.iter()) {
        errors.push(format!("causality violation: {e}"));
    }

    // 2. Counters reconstructed from the trace equal Metrics exactly.
    let reconstructed = audit(records.iter(), NUM_CLASSES);
    let metrics = traced.cluster.metrics();
    for class in MsgClass::ALL {
        let c = class.index();
        if reconstructed.messages[c] != metrics.total(class) {
            errors.push(format!(
                "{}: trace counts {} messages, metrics {}",
                class.name(),
                reconstructed.messages[c],
                metrics.total(class)
            ));
        }
        if reconstructed.hop_sum[c] != metrics.hop_sum(class) {
            errors.push(format!(
                "{}: trace hop_sum {}, metrics {}",
                class.name(),
                reconstructed.hop_sum[c],
                metrics.hop_sum(class)
            ));
        }
        if reconstructed.hop_count[c] != metrics.hop_count(class) {
            errors.push(format!(
                "{}: trace hop_count {}, metrics {}",
                class.name(),
                reconstructed.hop_count[c],
                metrics.hop_count(class)
            ));
        }
    }

    // 3. Every traced multicast covers exactly the brute-force owner set.
    let space = traced.cluster.space();
    let nodes = traced.cluster.node_ids().to_vec();
    let internal = [MsgClass::MbrInternal.index() as u8, MsgClass::QueryInternal.index() as u8];
    if metas.is_empty() {
        errors.push("golden scenario produced no multicasts to audit".to_string());
    }
    for meta in &metas {
        let delivered = multicast_delivery_set(&records, meta, &internal);
        let expected = brute_force_owners(space, &nodes, meta.lo, meta.hi);
        if delivered != expected {
            errors.push(format!(
                "multicast {} over [{}, {}] delivered to {:?}, owners are {:?}",
                meta.root.0, meta.lo, meta.hi, delivered, expected
            ));
        }
    }

    // 4. Golden digest over the full trace.
    let got = digest(&records, &metas);
    let digest_doc = {
        use serde_json::Value;
        let fields = vec![
            ("digest".to_string(), Value::Str(got.clone())),
            ("records".to_string(), Value::U64(records.len() as u64)),
            ("multicasts".to_string(), Value::U64(metas.len() as u64)),
        ];
        serde_json::to_string_pretty(&Value::Object(fields)).expect("render digest doc")
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/golden_trace_digest.json");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(path, &digest_doc).expect("write golden trace digest");
    } else {
        let pinned = include_str!("../results/golden_trace_digest.json");
        if digest_doc != pinned {
            errors.push(format!(
                "trace digest drifted from results/golden_trace_digest.json \
                 (got {got}, {} records); if intentional, regenerate with \
                 GOLDEN_REGEN=1 and commit the diff",
                records.len()
            ));
        }
    }

    if !errors.is_empty() {
        fail_with_artifacts(&records, &traced.engine_ticks, &errors);
    }
}
