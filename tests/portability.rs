//! The portability claim (§I, §VII): "the proposed middleware relies on the
//! standard distributed hashing table interface ... rather than on a
//! particular implementation", so it "can be used on top of any existing
//! content-based routing implementation".
//!
//! We run the identical workload on two substrates — Chord (finger tables)
//! and a Pastry-style prefix-routing overlay — and check that *what* the
//! system computes is identical while *how* messages travel differs.

use dsindex::chord::{PastryNet, Ring};
use dsindex::core::run_experiment_on;
use dsindex::prelude::*;

fn cfg(n: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::with_nodes(n);
    cfg.warmup_ms = 12_000;
    cfg.measure_ms = 15_000;
    cfg
}

#[test]
fn identical_results_on_chord_and_pastry() {
    let chord = run_experiment_on::<Ring>(&cfg(40));
    let pastry = run_experiment_on::<PastryNet>(&cfg(40));

    // Semantics are substrate-independent: same events, same matches, same
    // candidate counts (ownership is successor-based on both).
    assert_eq!(chord.events, pastry.events, "input events must not depend on the substrate");
    assert_eq!(chord.matches_delivered, pastry.matches_delivered);
    assert_eq!(chord.candidates, pastry.candidates);

    // Mechanics differ: prefix routing takes different (here: no more)
    // hops than binary fingers.
    assert!(
        pastry.hops.mbr <= chord.hops.mbr,
        "base-16 prefix routing should not need more hops than base-2 fingers: {} vs {}",
        pastry.hops.mbr,
        chord.hops.mbr
    );
    assert!(pastry.hops.mbr > 0.0, "pastry must still route through the overlay");
}

#[test]
fn cluster_api_works_unchanged_on_pastry() {
    // The full middleware API — streams, similarity queries, inner products,
    // notifications — driven on the non-default backend.
    let mut ccfg = ClusterConfig::new(12);
    ccfg.workload.window_len = 16;
    ccfg.workload.mbr_batch = 2;
    ccfg.kind = SimilarityKind::Subsequence;
    let mut c: Cluster<PastryNet> = Cluster::with_backend(ccfg);
    let sid = c.register_stream("s", 0);
    for i in 0..32u64 {
        let v = 0.5 + (i as f64 * 0.5).sin();
        c.post_value(sid, v, SimTime::from_ms(i * 100));
    }
    let target = c.streams()[0].extractor.window_snapshot();
    let qid = c.post_similarity_query(3, target, 0.1, 60_000, SimTime::from_ms(3200));
    c.notify_all(SimTime::from_ms(4000));
    assert!(c.notifications(qid).iter().any(|n| n.stream == sid));

    let ip = c.post_inner_product_query(
        5,
        sid,
        vec![0, 1],
        vec![0.5, 0.5],
        60_000,
        SimTime::from_ms(4000),
    );
    c.notify_all(SimTime::from_ms(6000));
    assert!(!c.ip_results(ip).is_empty());
}

#[test]
fn pastry_hops_beat_chord_at_scale() {
    let chord = run_experiment_on::<Ring>(&cfg(120));
    let pastry = run_experiment_on::<PastryNet>(&cfg(120));
    assert!(
        pastry.hops.query < chord.hops.query,
        "at 120 nodes, log16 routing must beat log2: {} vs {}",
        pastry.hops.query,
        chord.hops.query
    );
}
