//! Middleware-level churn: data centers crash and join while streams and
//! queries keep flowing — the paper's "seamless addition of new data
//! centers ... as well as handling of various possible failures" (§I).

use dsindex::prelude::*;

fn cluster(n: usize) -> Cluster {
    let mut cfg = ClusterConfig::new(n);
    cfg.workload.window_len = 16;
    cfg.workload.num_coeffs = 2;
    cfg.workload.mbr_batch = 2;
    cfg.kind = SimilarityKind::Subsequence;
    Cluster::new(cfg)
}

fn wave(window: usize, level: f64) -> Vec<f64> {
    (0..window).map(|i| level + (i as f64 * 0.5).sin()).collect()
}

fn feed(c: &mut Cluster, sid: StreamId, level: f64, from_ms: u64, n: usize) {
    for (i, v) in wave(n, level).into_iter().enumerate() {
        c.post_value(sid, v, SimTime::from_ms(from_ms + i as u64 * 100));
    }
}

#[test]
fn index_survives_crash_of_a_storage_node() {
    let mut c = cluster(16);
    let sid = c.register_stream("s", 0);
    feed(&mut c, sid, 0.4, 0, 32);

    // Crash a node that holds replicas (any non-home node with MBRs).
    let home = c.streams()[0].home;
    let victim = c
        .node_ids()
        .iter()
        .copied()
        .find(|&n| n != home && c.node(n).mbr_count() > 0)
        .unwrap_or_else(|| *c.node_ids().iter().find(|&&n| n != home).unwrap());
    c.crash_node(victim);

    // The stream keeps shipping; fresh replicas land on the repaired ring,
    // and a query posted after recovery finds the stream.
    feed(&mut c, sid, 0.4, 4000, 16);
    let target = c.streams()[0].extractor.window_snapshot();
    let qid = c.post_similarity_query(1, target, 0.1, 60_000, SimTime::from_ms(6000));
    c.notify_all(SimTime::from_ms(7000));
    assert!(
        c.notifications(qid).iter().any(|n| n.stream == sid),
        "index must self-heal after a storage node crash"
    );
}

#[test]
fn orphaned_stream_is_silent_until_rehomed() {
    let mut c = cluster(12);
    let sid = c.register_stream("s", 3);
    feed(&mut c, sid, 0.2, 0, 24);
    let home = c.streams()[0].home;
    c.crash_node(home);
    assert_eq!(c.orphaned_streams(), vec![sid]);

    // While orphaned: values update the sensor window but ship nothing.
    let before: usize = c.node_ids().iter().map(|&n| c.node(n).mbr_count()).sum();
    feed(&mut c, sid, 0.2, 4000, 8);
    let after: usize = c.node_ids().iter().map(|&n| c.node(n).mbr_count()).sum();
    assert_eq!(before, after, "orphaned stream must not ship MBRs");

    // Re-home and verify shipping resumes.
    c.rehome_stream(sid, 0, SimTime::from_ms(5000));
    assert!(c.orphaned_streams().is_empty());
    feed(&mut c, sid, 0.2, 5000, 8);
    let resumed: usize = c.node_ids().iter().map(|&n| c.node(n).mbr_count()).sum();
    assert!(resumed > after, "re-homed stream must ship again");
}

#[test]
fn location_service_recovers_after_h2_owner_crash() {
    let mut c = cluster(12);
    let sid = c.register_stream("patient", 2);
    feed(&mut c, sid, 1.0, 0, 24);

    // Find and crash the node holding the location record.
    let key = dsindex::core::stream_key(c.space(), "patient");
    let h2_owner = c.ring().ideal_successor(key).unwrap();
    let home = c.streams()[0].home;
    if h2_owner == home {
        // Degenerate layout for this seed: nothing to test.
        return;
    }
    c.crash_node(h2_owner);

    // The record is gone: an inner-product query misses gracefully.
    let q1 = c.post_inner_product_query(0, sid, vec![0], vec![1.0], 60_000, SimTime::from_secs(4));
    assert!(c.location_misses() >= 1);
    assert!(c.ip_results(q1).is_empty());

    // The source's periodic soft-state refresh re-registers the record...
    c.notify_all(SimTime::from_secs(6));
    // ...and the next query resolves and gets answers.
    let q2 = c.post_inner_product_query(0, sid, vec![0], vec![1.0], 60_000, SimTime::from_secs(6));
    c.notify_all(SimTime::from_secs(8));
    assert!(!c.ip_results(q2).is_empty(), "location service must recover via periodic refresh");
}

#[test]
fn joining_node_picks_up_coverage() {
    let mut c = cluster(8);
    let sid = c.register_stream("s", 0);
    feed(&mut c, sid, 0.5, 0, 24);
    let n_before = c.num_nodes();
    let newcomer = c.join_node("late-arrival-1");
    assert_eq!(c.num_nodes(), n_before + 1);
    assert!(c.ring().contains(newcomer));
    assert!(c.ring().is_fully_consistent());

    // Keep streaming past BSPAN: if the newcomer covers the stream's key
    // range, replicas start landing on it. (Radius 0.3 because the paper's
    // phase-sensitive X1 coefficient rotates between consecutive summaries,
    // so only MBRs within a few steps of the query's phase are candidates.)
    feed(&mut c, sid, 0.5, 4000, 60);
    let target = c.streams()[0].extractor.window_snapshot();
    let qid = c.post_similarity_query(1, target, 0.3, 60_000, SimTime::from_ms(10_000));
    c.notify_all(SimTime::from_ms(10_500));
    assert!(
        c.notifications(qid).iter().any(|n| n.stream == sid),
        "queries must keep finding streams after a join"
    );
}

#[test]
fn aggregators_are_reassigned_on_crash() {
    // zeta = 1 so the summary of the *current* window always ships (the
    // continuous query matches against live windows at notify time).
    let mut cfg = ClusterConfig::new(16);
    cfg.workload.window_len = 16;
    cfg.workload.num_coeffs = 2;
    cfg.workload.mbr_batch = 1;
    cfg.kind = SimilarityKind::Subsequence;
    let mut c = Cluster::new(cfg);
    let sid = c.register_stream("s", 0);
    feed(&mut c, sid, 0.3, 0, 32);
    let target = c.streams()[0].extractor.window_snapshot();
    let qid = c.post_similarity_query(2, target, 0.3, 120_000, SimTime::from_ms(4000));
    c.notify_all(SimTime::from_ms(5000));
    let live = c.notifications(qid).len();
    assert!(live > 0);

    // Crash every node until only notifications' processing path survives —
    // here: crash 4 arbitrary non-home nodes (one may be the aggregator).
    let home = c.streams()[0].home;
    let victims: Vec<_> = c.node_ids().iter().copied().filter(|&n| n != home).take(4).collect();
    for v in victims {
        c.crash_node(v);
    }
    // The stream keeps feeding (replaying the same 32-sample wave, so the
    // window content at notify time equals the query target again) and
    // fresh MBRs exist after the crashes.
    feed(&mut c, sid, 0.3, 6000, 32);
    c.notify_all(SimTime::from_ms(9300));
    assert!(
        c.notifications(qid).len() > live,
        "responses must continue after aggregator reassignment"
    );
}
