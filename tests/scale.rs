//! Scale and placement robustness: many streams per data center, skewed
//! placement, and a large-system smoke run.

use dsindex::prelude::*;

#[test]
fn multiple_streams_per_data_center() {
    // The paper's experiments use one stream per node "in all our tests",
    // but data centers are explicitly proxies for *sets* of sensors; the
    // middleware must handle several streams at one home.
    let mut cfg = ClusterConfig::new(6);
    cfg.workload.window_len = 16;
    // zeta = 1 so the newest summary always ships (queries verify against
    // the *current* window).
    cfg.workload.mbr_batch = 1;
    cfg.kind = SimilarityKind::Subsequence;
    let mut c = Cluster::new(cfg);
    // 18 streams over 6 nodes: three each.
    let sids: Vec<StreamId> = (0..18).map(|i| c.register_stream(&format!("s{i}"), i % 6)).collect();
    for step in 0..40u64 {
        for (i, &sid) in sids.iter().enumerate() {
            let v = i as f64 * 0.1 + (step as f64 * 0.5 + i as f64).sin();
            c.post_value(sid, v, SimTime::from_ms(step * 100));
        }
    }
    // Each stream is individually queryable.
    for &probe in &[0usize, 7, 17] {
        let target = c.streams()[probe].extractor.window_snapshot();
        let qid = c.post_similarity_query(1, target, 0.1, 60_000, SimTime::from_ms(4000));
        c.notify_all(SimTime::from_ms(4500));
        assert!(
            c.notifications(qid).iter().any(|n| n.stream == sids[probe]),
            "stream {probe} must match its own window"
        );
    }
}

#[test]
fn skewed_placement_still_spreads_index_load() {
    // All streams homed at ONE data center: the *index* load (where
    // summaries are stored) must still spread over the ring, because
    // placement follows content, not origin.
    let mut cfg = ClusterConfig::new(12);
    cfg.workload.window_len = 16;
    cfg.workload.mbr_batch = 2;
    cfg.workload.bspan_ms = 600_000; // keep everything stored for the check
    cfg.kind = SimilarityKind::Subsequence;
    let mut c = Cluster::new(cfg);
    let sids: Vec<StreamId> = (0..12).map(|i| c.register_stream(&format!("s{i}"), 0)).collect();
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut walks: Vec<_> =
        (0..sids.len()).map(|_| dsindex::streamgen::RandomWalk::sample_spread(&mut rng)).collect();
    for step in 0..120u64 {
        for (i, &sid) in sids.iter().enumerate() {
            let v = walks[i].next_value(&mut rng);
            c.post_value(sid, v, SimTime::from_ms(step * 100));
        }
    }
    let holders = c.node_ids().iter().filter(|&&n| c.node(n).mbr_count() > 0).count();
    assert!(
        holders >= 4,
        "content routing must spread replicas across the ring, got {holders} holders"
    );
}

#[test]
fn hundred_node_experiment_load_stays_balanced() {
    // §V at 100 nodes: with one independent random-walk stream per node,
    // content routing must keep the per-node message load flat — no node
    // hoards a disproportionate share, and the distribution stays far from
    // the all-on-one-node extreme (Gini → 1).
    let mut cfg = ExperimentConfig::with_nodes(100);
    cfg.warmup_ms = 20_000;
    cfg.measure_ms = 40_000;
    let r = run_experiment(&cfg);
    assert_eq!(r.per_node_load.len(), 100);
    let mean = r.per_node_load.iter().sum::<f64>() / r.per_node_load.len() as f64;
    assert!(mean > 0.0, "measurement window saw no load at all");
    let max = r.per_node_load.iter().cloned().fold(0.0f64, f64::max);
    let ratio = max / mean;
    assert!(ratio < 8.0, "hottest node carries {ratio:.2}x the mean load");
    // Same distribution through the exact-histogram Gini used by the
    // faultsim load oracle (scaled to integer message counts).
    let counts: Vec<u64> = r.per_node_load.iter().map(|l| (l * 1e3).round() as u64).collect();
    let g = gini(&counts);
    assert!(g < 0.6, "per-node load Gini {g:.3} indicates a hotspot");
    assert!((0.0..1.0).contains(&g), "Gini out of range: {g}");
}

#[test]
#[ignore = "stress run: ~1000 nodes, run with cargo test -- --ignored"]
fn thousand_node_experiment_smoke() {
    let mut cfg = ExperimentConfig::with_nodes(1000);
    cfg.warmup_ms = 30_000;
    cfg.measure_ms = 30_000;
    let r = run_experiment(&cfg);
    assert_eq!(r.num_nodes, 1000);
    assert!(r.events.mbrs > 0 && r.events.queries > 0 && r.events.responses > 0);
    // The scalability claims extrapolate: transit stays logarithmic-ish.
    assert!(r.load.mbrs_in_transit < 20.0, "transit load {}", r.load.mbrs_in_transit);
}
