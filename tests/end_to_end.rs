//! Full-stack integration tests: streams in, queries in, verified matches
//! out — across dsp, chord, simnet and core together.

use dsindex::prelude::*;

fn cluster(n: usize, window: usize) -> Cluster {
    let mut cfg = ClusterConfig::new(n);
    cfg.workload.window_len = window;
    cfg.workload.num_coeffs = 2;
    cfg.workload.mbr_batch = 4;
    cfg.kind = SimilarityKind::Subsequence;
    Cluster::new(cfg)
}

/// A family of windows with controllable shape difference.
fn wave(window: usize, level: f64, detune: f64) -> Vec<f64> {
    (0..window).map(|i| level + (i as f64 * (0.5 + detune)).sin()).collect()
}

#[test]
fn no_false_dismissals_across_the_full_stack() {
    // 20 streams with a spectrum of shapes; for every query radius, every
    // stream whose exact normalized distance to the query is within the
    // radius must be notified. (False positives are allowed by design and
    // filtered by verification; false dismissals never.)
    let window = 32;
    let mut c = cluster(24, window);
    let mut sids = Vec::new();
    for i in 0..20 {
        let sid = c.register_stream(&format!("s{i}"), i);
        sids.push(sid);
        let series = wave(window + 16, 0.2 + 0.05 * i as f64, 0.01 * i as f64);
        for &v in &series {
            c.post_value(sid, v, SimTime::ZERO);
        }
    }
    let target = wave(window, 0.4, 0.04); // matches streams near i = 4
    for radius in [0.05, 0.15, 0.4] {
        let qid = c.post_similarity_query(2, target.clone(), radius, 60_000, SimTime::ZERO);
        c.notify_all(SimTime::from_ms(2000));
        let notified: Vec<StreamId> = c.notifications(qid).iter().map(|n| n.stream).collect();
        for &sid in &sids {
            let win = c.streams()[sid as usize].extractor.window_snapshot();
            let d = dsindex::dsp::normalized_distance(&target, &win, Normalization::UnitNorm);
            if d <= radius - 1e-9 {
                assert!(
                    notified.contains(&sid),
                    "stream {sid} at exact distance {d} missing for radius {radius}"
                );
            }
        }
    }
}

#[test]
fn notifications_only_contain_true_matches() {
    // Verification must filter every false positive: each notified stream's
    // current window is within the radius.
    let window = 32;
    let mut c = cluster(16, window);
    for i in 0..10 {
        let sid = c.register_stream(&format!("s{i}"), i);
        let series = wave(window + 8, 0.1 * i as f64, 0.02 * i as f64);
        for &v in &series {
            c.post_value(sid, v, SimTime::ZERO);
        }
    }
    let target = wave(window, 0.3, 0.06);
    let radius = 0.2;
    let qid = c.post_similarity_query(1, target.clone(), radius, 60_000, SimTime::ZERO);
    c.notify_all(SimTime::from_ms(2000));
    for n in c.notifications(qid) {
        let win = c.streams()[n.stream as usize].extractor.window_snapshot();
        let d = dsindex::dsp::normalized_distance(&target, &win, Normalization::UnitNorm);
        assert!(d <= radius + 1e-9, "notified stream {} at distance {d}", n.stream);
    }
}

#[test]
fn summaries_land_on_the_ring_where_eq6_says() {
    // The stored replicas of a stream's MBR must sit exactly on the nodes
    // covering the MBR's Eq. 6 key range.
    let window = 32;
    let mut c = cluster(12, window);
    let sid = c.register_stream("s", 0);
    let mut plan = None;
    for (i, v) in wave(window + 8, 0.5, 0.0).into_iter().enumerate() {
        if let Some(p) = c.post_value(sid, v, SimTime::from_ms(i as u64)) {
            plan = Some(p);
        }
    }
    let plan = plan.expect("an MBR shipped");
    // Recompute the expected covering set from the ring directly.
    let fv = c.streams()[0].extractor.current();
    let key = dsindex::core::summary_key(c.space(), &fv);
    let owner = c.ring().ideal_successor(key).unwrap();
    assert!(plan.nodes().contains(&owner), "the current summary's key owner must hold a replica");
}

#[test]
fn inner_product_accuracy_improves_with_coefficients() {
    let window = 64;
    let exact_of = |c: &Cluster, span: usize| -> f64 {
        let win = c.streams()[0].extractor.window_snapshot();
        win[..span].iter().sum::<f64>() / span as f64
    };
    let mut errors = Vec::new();
    for k in [1usize, 4, 8] {
        let mut cfg = ClusterConfig::new(8);
        cfg.workload.window_len = window;
        cfg.workload.num_coeffs = k;
        cfg.kind = SimilarityKind::Subsequence;
        let mut c = Cluster::new(cfg);
        let sid = c.register_stream("s", 0);
        for (i, v) in wave(window + 8, 1.0, 0.02).into_iter().enumerate() {
            c.post_value(sid, v, SimTime::from_ms(i as u64 * 10));
        }
        let span = 16;
        let qid = c.post_inner_product_query(
            3,
            sid,
            (0..span).collect(),
            vec![1.0 / span as f64; span],
            60_000,
            SimTime::from_secs(1),
        );
        c.notify_all(SimTime::from_secs(2));
        let (_, approx) = c.ip_results(qid)[0];
        errors.push((approx - exact_of(&c, span)).abs());
    }
    assert!(
        errors[2] <= errors[0] + 1e-9,
        "more coefficients must not worsen the approximation: {errors:?}"
    );
}

#[test]
fn responses_stop_after_lifespan_and_mbrs_expire() {
    let window = 32;
    let mut c = cluster(8, window);
    let sid = c.register_stream("s", 0);
    for (i, v) in wave(window + 8, 0.2, 0.0).into_iter().enumerate() {
        c.post_value(sid, v, SimTime::from_ms(i as u64));
    }
    let target = c.streams()[0].extractor.window_snapshot();
    let qid = c.post_similarity_query(2, target, 0.1, 3000, SimTime::ZERO);
    c.notify_all(SimTime::from_ms(1000));
    let live = c.notifications(qid).len();
    assert!(live > 0, "must match while alive");
    c.notify_all(SimTime::from_ms(10_000)); // query and MBRs both expired
    assert_eq!(c.notifications(qid).len(), live, "no notifications after expiry");
    // The notify cycle's purge actually freed the storage on every node
    // (all MBRs were posted around t=0 with BSPAN 5 s).
    for &id in c.node_ids() {
        assert_eq!(c.node(id).mbr_count(), 0, "node {id} still holds expired MBRs");
    }
}

#[test]
fn experiment_driver_is_deterministic_across_threads() {
    // The bench harness runs sweeps in parallel; reports must be identical
    // to sequential runs (determinism crosses the crate boundary).
    let mut cfg = ExperimentConfig::with_nodes(12);
    cfg.warmup_ms = 8000;
    cfg.measure_ms = 8000;
    let a = run_experiment(&cfg);
    let handle = std::thread::spawn({
        let cfg = cfg.clone();
        move || run_experiment(&cfg)
    });
    let b = handle.join().unwrap();
    assert_eq!(format!("{:?}", a.load), format!("{:?}", b.load));
    assert_eq!(a.per_node_load, b.per_node_load);
    assert_eq!(a.events, b.events);
}
