//! Churn stress tests for the routing substrate: random joins, graceful
//! leaves and abrupt crashes interleaved with lookups, verifying the
//! fault-tolerance and adaptivity claims (§I, §VII).

use dsindex::chord::{IdSpace, Ring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fresh_ring(space: IdSpace, n: u64) -> (Ring, Vec<u64>) {
    let ids: Vec<u64> = (0..n).map(|i| space.hash_str(&format!("dc-{i}"))).collect();
    (Ring::with_nodes(space, ids.iter().copied()), ids)
}

#[test]
fn random_churn_converges_back_to_consistency() {
    let space = IdSpace::new(16);
    let (mut ring, _) = fresh_ring(space, 48);
    let mut rng = StdRng::seed_from_u64(7);
    let mut next_join = 1000u64;

    for round in 0..20 {
        // A burst of random churn events.
        for _ in 0..3 {
            match rng.gen_range(0..3) {
                0 => {
                    let id = space.hash_str(&format!("joiner-{next_join}"));
                    next_join += 1;
                    if !ring.contains(id) {
                        let boot = *ring.node_ids().first().unwrap();
                        ring.join(id, boot);
                    }
                }
                1 if ring.len() > 8 => {
                    let ids = ring.node_ids();
                    let victim = ids[rng.gen_range(0..ids.len())];
                    ring.leave(victim);
                }
                _ if ring.len() > 8 => {
                    let ids = ring.node_ids();
                    let victim = ids[rng.gen_range(0..ids.len())];
                    ring.crash(victim);
                }
                _ => {}
            }
        }
        // Mid-churn, lookups must terminate at a *live* node. (Exact
        // correctness mid-churn is guaranteed for failures via successor
        // lists, but a just-joined node is only visible after
        // stabilization — Chord's eventual-consistency contract.)
        let origin = *ring.node_ids().first().unwrap();
        for _ in 0..10 {
            let key = rng.gen_range(0..space.modulus());
            let found = ring.lookup(origin, key).owner;
            assert!(ring.contains(found), "round {round}: lookup returned a dead node");
        }
        // Stabilize; must converge within a few rounds.
        let mut converged = false;
        for _ in 0..12 {
            ring.stabilize_round();
            ring.fix_fingers_round();
            if ring.is_fully_consistent() {
                converged = true;
                break;
            }
        }
        assert!(converged, "round {round}: stabilization did not converge");
    }
}

#[test]
fn mass_crash_is_survivable_with_successor_lists() {
    let space = IdSpace::new(16);
    let (mut ring, ids) = fresh_ring(space, 64);
    let mut rng = StdRng::seed_from_u64(3);
    // Crash 25% of nodes simultaneously — but never more adjacent nodes
    // than the successor list covers.
    let mut victims: Vec<u64> = ids.iter().copied().step_by(4).collect();
    victims.truncate(16);
    for &v in &victims {
        ring.crash(v);
    }
    let origin = ids.iter().copied().find(|n| ring.contains(*n)).unwrap();
    for _ in 0..50 {
        let key = rng.gen_range(0..space.modulus());
        assert_eq!(ring.lookup(origin, key).owner, ring.ideal_successor(key).unwrap());
    }
    for _ in 0..10 {
        ring.stabilize_round();
        ring.fix_fingers_round();
    }
    assert!(ring.is_fully_consistent());
}

#[test]
fn join_preserves_o_log_n_hops() {
    let space = IdSpace::new(20);
    let (mut ring, ids) = fresh_ring(space, 64);
    // Double the ring size through protocol joins.
    for i in 0..64 {
        let id = space.hash_str(&format!("second-wave-{i}"));
        if !ring.contains(id) {
            ring.join(id, ids[0]);
        }
        if i % 8 == 7 {
            ring.stabilize_round();
            ring.fix_fingers_round();
        }
    }
    for _ in 0..6 {
        ring.stabilize_round();
        ring.fix_fingers_round();
    }
    assert!(ring.is_fully_consistent());
    // Average hops stays around (1/2) log2(128) ~= 3.5.
    let mut rng = StdRng::seed_from_u64(11);
    let total: u32 =
        (0..100).map(|_| ring.lookup(ids[0], rng.gen_range(0..space.modulus())).hops()).sum();
    let avg = total as f64 / 100.0;
    assert!(avg < 7.0, "average hops {avg} too high after doubling membership");
}
