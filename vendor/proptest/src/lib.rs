//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros,
//! `Strategy` with `prop_map`, range and `any::<T>()` strategies, and
//! `prop::collection::{vec, btree_set}`.
//!
//! Differences from upstream, by design:
//! * Sampling is fully deterministic (fixed seed per test function), so test
//!   runs are reproducible without a persistence file.
//! * No shrinking — a failing case reports the formatted assertion message
//!   from the first failure instead of a minimized input.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};

/// The RNG handed to strategies (deterministic xoshiro256++).
pub type TestRng = rand::StdRng;

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; the runner draws a fresh case.
    Reject(String),
    /// `prop_assert!`-style failure; the runner panics with this message.
    Fail(String),
}

/// Runner configuration (`ProptestConfig::with_cases(n)`).
pub mod test_runner {
    /// How many accepted cases each property must pass.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config requiring `cases` successful runs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub use test_runner::ProptestConfig;

/// Drives one property: draws inputs until `cfg.cases` accepted runs pass.
///
/// Seeded per call site from the test's name hash so sibling properties do
/// not share a stream yet remain reproducible run-to-run.
pub fn run_cases<F>(cfg: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = cfg.cases.saturating_mul(16).saturating_add(1024);
    while passed < cfg.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property `{name}`: too many rejected inputs ({rejected}); \
                         last rejection: {why}"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed after {passed} passing cases: {msg}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 G)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning a wide magnitude range (no NaN/inf: every
        // property in this workspace feeds these into arithmetic oracles).
        let mag: f64 = rng.gen_range(-300.0f64..300.0);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * rng.gen::<f64>() * 10f64.powf(mag / 10.0)
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection sizes accepted by [`collection::vec`] and friends.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::*;

    /// Strategy producing `Vec`s of `elem`-generated items.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(elem, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of `elem`-generated items.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::btree_set(elem, size)`.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            let max_attempts = target.saturating_mul(100) + 1000;
            while set.len() < target && attempts < max_attempts {
                set.insert(self.elem.generate(rng));
                attempts += 1;
            }
            assert!(
                set.len() >= self.size.lo,
                "btree_set strategy could not reach minimum size {} (domain too small?)",
                self.size.lo
            );
            set
        }
    }
}

/// Optional-value strategies (`prop::option::*`).
pub mod option {
    use super::*;

    /// Strategy producing `Option`s of `elem`-generated items.
    pub struct OptionStrategy<S> {
        elem: S,
    }

    /// `prop::option::of(elem)` — yields `None` half the time.
    pub fn of<S: Strategy>(elem: S) -> OptionStrategy<S> {
        OptionStrategy { elem }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen::<bool>() {
                Some(self.elem.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
        TestCaseError,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal muncher for [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::run_cases($cfg, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                #[allow(unreachable_code)]
                (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Rejects the current case (draws a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn ranges_stay_in_bounds(a in 0u64..100, b in -1.0f64..1.0, mut c in 1usize..5) {
            c += 1;
            prop_assert!(a < 100);
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!((2..6).contains(&c));
        }

        fn tuples_and_map_compose(
            pair in (0u32..10, 0u32..10).prop_map(|(x, y)| x + y),
            flag in any::<bool>(),
        ) {
            prop_assert!(pair <= 18, "sum {pair} out of range");
            prop_assert_eq!(flag || !flag, true);
        }

        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u8>(), 0..10),
            s in prop::collection::btree_set(0u64..4096, 2..8),
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!((2..8).contains(&s.len()));
        }

        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics() {
        crate::run_cases(ProptestConfig::with_cases(8), "always_fails", |_rng| {
            Err(crate::TestCaseError::Fail("forced".to_string()))
        });
    }
}
