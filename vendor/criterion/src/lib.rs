//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock runner: each
//! benchmark runs `sample_size` samples after one warm-up and prints
//! min/median/mean per iteration. No statistics engine, no HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("\ngroup {name}");
        BenchmarkGroup { _parent: self, name, sample_size }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_bench(&id.to_string(), self.default_sample_size, f);
    }

    /// Processes CLI args (accepted for API compatibility; no-op).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Prints the closing summary (no-op).
    pub fn final_summary(&mut self) {}
}

/// A named benchmark group with its own sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time (accepted for compatibility; no-op).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function-name + parameter id, rendered `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{name}/{param}") }
    }

    /// A parameter-only id.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId { label: param.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample of `iters_per_sample` calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up sample sizes the per-sample iteration count so each sample
    // takes very roughly a millisecond.
    let mut warm = Bencher { samples: Vec::new(), iters_per_sample: 1 };
    f(&mut warm);
    let per_iter = warm
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::from_micros(1))
        .max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut b = Bencher { samples: Vec::new(), iters_per_sample: iters };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mut per_iter_ns: Vec<f64> =
        b.samples.iter().map(|d| d.as_nanos() as f64 / iters as f64).collect();
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    if per_iter_ns.is_empty() {
        println!("  {label}: no samples");
        return;
    }
    let min = per_iter_ns[0];
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "  {label}: min {} · median {} · mean {}  ({} samples × {} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        per_iter_ns.len(),
        iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{:.0} ns", ns)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runner_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| black_box(1u64 + 1));
        });
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * n));
        });
        group.finish();
        assert_eq!(runs, 6); // 1 warm-up + 5 samples
    }
}
