//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, deterministic implementation of the exact
//! `rand 0.8` surface it consumes: `StdRng`, `SeedableRng::seed_from_u64`,
//! and the `Rng` extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! tiny, and fully reproducible from a `u64` seed. It is *not* the ChaCha12
//! generator of upstream `StdRng`, so absolute random sequences differ from
//! upstream; everything in this repository treats the RNG as an opaque
//! deterministic source, which is the property this shim preserves.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The standard deterministic generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // The all-zero state is a fixed point of xoshiro; displace it.
            s = [0x9E3779B97F4A7C15, 0x6A09E667F3BCC909, 0xBB67AE8584CAA73B, 0xA54FF53A5F1D36F1];
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
