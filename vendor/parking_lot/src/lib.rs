//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API:
//! `lock()` returns the guard directly (a poisoned std lock is recovered
//! rather than surfaced, matching parking_lot's no-poisoning semantics).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock without poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(vec![0u64; 3]);
        m.lock()[1] = 7;
        assert_eq!(m.into_inner(), vec![0, 7, 0]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u64);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
