//! Offline stand-in for `crossbeam`.
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since 1.63). The crossbeam API differences
//! this preserves: `scope` returns `Result` (Err if any unjoined thread
//! panicked) and spawn closures receive a scope argument.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle passed to `scope` and to each spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a scope token
        /// (crossbeam passes the scope so threads can spawn more threads;
        /// this shim's token supports nothing and is typically ignored).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&NestedScope(()))) }
        }
    }

    /// Opaque token handed to spawn closures in place of a nested scope.
    pub struct NestedScope(());

    /// Runs `f` with a scope in which threads borrowing local data can be
    /// spawned; all threads are joined before `scope` returns. Returns
    /// `Err` with the panic payload if the scope body or an unjoined
    /// thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = vec![1u64, 2, 3, 4];
            let mut out = vec![0u64; 4];
            super::scope(|scope| {
                for (i, slot) in out.iter_mut().enumerate() {
                    let data = &data;
                    scope.spawn(move |_| {
                        *slot = data[i] * 10;
                    });
                }
            })
            .expect("threads join cleanly");
            assert_eq!(out, vec![10, 20, 30, 40]);
        }

        #[test]
        fn panicking_thread_surfaces_as_err() {
            let r = super::scope(|scope| {
                scope.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
