//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls against the
//! vendored serde shim's `Value` model. The parser reads only what the
//! generated code needs — type name, field names, variant shapes — directly
//! from the token stream (no `syn`/`quote`, which are unavailable offline).
//!
//! Supported shapes: named/tuple/unit structs and enums with unit, tuple
//! and struct variants. Generic types are rejected with a `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(inp) => gen_serialize(&inp).parse().expect("generated Serialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(inp) => gen_deserialize(&inp).parse().expect("generated Deserialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().expect("compile_error parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor { toks: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips any number of `#[...]` attributes (incl. doc comments).
    fn skip_attrs(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
    }

    /// Skips `pub` / `pub(...)` visibility.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    /// Skips tokens until a `,` at angle-bracket depth 0, consuming it.
    /// Returns true if a comma was consumed (false at end of stream).
    fn skip_until_comma(&mut self) -> bool {
        let mut angle: i32 = 0;
        let mut prev_dash = false;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                let c = p.as_char();
                match c {
                    '<' => angle += 1,
                    '>' if !prev_dash => angle -= 1, // `->` is not a closing angle
                    ',' if angle <= 0 => return true,
                    _ => {}
                }
                prev_dash = c == '-';
            } else {
                prev_dash = false;
            }
        }
        false
    }
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kw = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {:?}", other)),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {:?}", other)),
    };
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim: cannot derive for generic type `{name}` (write a manual impl)"
            ));
        }
    }
    match kw.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let g = g.stream();
                    parse_named_fields(g)?
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let g = g.stream();
                    Fields::Tuple(count_tuple_fields(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected struct body: {:?}", other)),
            };
            Ok(Input { name, shape: Shape::Struct(fields) })
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {:?}", other)),
            };
            Ok(Input { name, shape: Shape::Enum(parse_variants(body)?) })
        }
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Fields, String> {
    let mut c = Cursor::new(body);
    let mut names = Vec::new();
    loop {
        c.skip_attrs();
        c.skip_vis();
        match c.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                match c.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected `:` after field, found {:?}", other)),
                }
                if !c.skip_until_comma() {
                    break; // last field without trailing comma
                }
            }
            Some(other) => return Err(format!("expected field name, found {:?}", other)),
        }
    }
    Ok(Fields::Named(names))
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut count = 0;
    loop {
        c.skip_attrs();
        c.skip_vis();
        if c.peek().is_none() {
            break;
        }
        count += 1;
        if !c.skip_until_comma() {
            break;
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        let name = match c.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found {:?}", other)),
        };
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                c.pos += 1;
                parse_named_fields(inner)?
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                c.pos += 1;
                Fields::Tuple(count_tuple_fields(inner))
            }
            _ => Fields::Unit,
        };
        // Skip optional `= discriminant` and the separating comma.
        match c.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                c.pos += 1;
                c.skip_until_comma();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                c.pos += 1;
            }
            _ => {}
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation (rendered as source text, then re-parsed)
// ---------------------------------------------------------------------

fn gen_serialize(inp: &Input) -> String {
    let name = &inp.name;
    let body = match &inp.shape {
        Shape::Struct(Fields::Unit) => "serde::Value::Null".to_string(),
        Shape::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({:?}.to_string(), serde::Serialize::to_value(&self.{f}))", f))
                .collect();
            format!("serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Struct(Fields::Tuple(1)) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("serde::Serialize::to_value(&self.{i})")).collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vn} => serde::Value::Str({:?}.to_string()),", vn)
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => serde::Value::Object(vec![({:?}.to_string(), \
                             serde::Serialize::to_value(f0))]),",
                            vn
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Object(vec![({:?}.to_string(), \
                                 serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                vn,
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({:?}.to_string(), serde::Serialize::to_value({f}))",
                                        f
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Object(vec![\
                                 ({:?}.to_string(), serde::Value::Object(vec![{}]))]),",
                                vn,
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n        {body}\n    }}\n}}"
    )
}

fn gen_deserialize(inp: &Input) -> String {
    let name = &inp.name;
    let body = match &inp.shape {
        Shape::Struct(Fields::Unit) => format!("{{ let _ = v; Ok({name}) }}"),
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(serde::field(v, {:?}, {:?})?)?",
                        f, name
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("serde::Deserialize::from_value(&a[{i}])?")).collect();
            format!(
                "{{ let a = v.as_array().ok_or_else(|| serde::Error::expected({:?}, v))?; \
                 if a.len() != {n} {{ return Err(serde::Error::msg(format!(\
                 \"expected {n} elements for {name}, got {{}}\", a.len()))); }} \
                 Ok({name}({})) }}",
                name,
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push(format!("{:?} => return Ok({name}::{vn}),", vn));
                    }
                    Fields::Tuple(1) => tagged_arms.push(format!(
                        "{:?} => return Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),",
                        vn
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&a[{i}])?"))
                            .collect();
                        tagged_arms.push(format!(
                            "{:?} => {{ let a = inner.as_array().ok_or_else(|| \
                             serde::Error::expected(\"array\", inner))?; \
                             if a.len() != {n} {{ return Err(serde::Error::msg(format!(\
                             \"expected {n} elements for {name}::{vn}, got {{}}\", a.len()))); }} \
                             return Ok({name}::{vn}({})); }}",
                            vn,
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let ty = format!("{name}::{vn}");
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(\
                                     serde::field(inner, {:?}, {:?})?)?",
                                    f, ty
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "{:?} => return Ok({name}::{vn} {{ {} }}),",
                            vn,
                            inits.join(", ")
                        ));
                    }
                }
            }
            let unit_block = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let Some(s) = v.as_str() {{ match s {{ {} _ => return \
                     Err(serde::Error::msg(format!(\"unknown variant `{{s}}` of {name}\"))), }} }}",
                    unit_arms.join(" ")
                )
            };
            let tagged_block = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let Some(obj) = v.as_object() {{ if obj.len() == 1 {{ \
                     let (tag, inner) = &obj[0]; let _ = inner; match tag.as_str() {{ {} _ => return \
                     Err(serde::Error::msg(format!(\"unknown variant `{{tag}}` of {name}\"))), }} }} }}",
                    tagged_arms.join(" ")
                )
            };
            format!("{{ {unit_block} {tagged_block} Err(serde::Error::expected({:?}, v)) }}", name)
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n        {body}\n    }}\n}}"
    )
}
