//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored serde shim's [`Value`] tree. Output is
//! deterministic (struct fields in declaration order, map keys sorted by the
//! serde shim), which the repository's golden-report and determinism tests
//! depend on.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Converts a value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse(s)?;
    T::from_value(&v)
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T> {
    T::from_value(v)
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` prints the shortest representation that round-trips,
        // and keeps a `.0` on integral values — matching serde_json.
        out.push_str(&format!("{:?}", v));
    } else {
        out.push_str("null");
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::F64(n) => write_f64(*n, out),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {:?}", other)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!("expected `,` or `]`, found {:?}", other)));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::msg(format!("expected `,` or `}}`, found {:?}", other)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);

        let mut m = HashMap::new();
        m.insert(7u64, vec![1.5f64]);
        m.insert(3u64, vec![]);
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"3":[],"7":[1.5]}"#);
        assert_eq!(from_str::<HashMap<u64, Vec<f64>>>(&s).unwrap(), m);
    }

    #[test]
    fn deterministic_map_order() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for i in 0..50u64 {
            a.insert(i, i * 2);
        }
        for i in (0..50u64).rev() {
            b.insert(i, i * 2);
        }
        assert_eq!(to_string(&a).unwrap(), to_string(&b).unwrap());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("x".into())),
            ("items".into(), Value::Array(vec![Value::U64(1), Value::Null])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"name\""));
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
