//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal serde-compatible surface: `Serialize` / `Deserialize` traits (and
//! derive macros) that go through an in-memory JSON [`Value`] tree. The
//! sibling `serde_json` shim renders and parses that tree.
//!
//! Design notes:
//! * Struct fields serialize in declaration order and map serialization
//!   sorts keys, so output is byte-for-byte deterministic — a property the
//!   repository's golden-report tests rely on.
//! * Numbers keep three lanes (`F64` / `I64` / `U64`) so 64-bit identifiers
//!   round-trip exactly.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// An in-memory JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Floating-point number.
    F64(f64),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (any number lane).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::F64(_) | Value::I64(_) | Value::U64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// An "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Error {
        Error(format!("expected {what}, found {}", found.kind()))
    }

    /// A free-form error.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a required struct field during derived deserialization.
pub fn field<'v>(v: &'v Value, name: &str, ty: &str) -> Result<&'v Value, Error> {
    v.get(name).ok_or_else(|| Error(format!("missing field `{name}` of {ty}")))
}

/// Types that can render themselves to a [`Value`].
pub trait Serialize {
    /// Converts to a JSON value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses from a JSON value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(raw).map_err(|_| Error::msg(format!(
                    "{} out of range for {}", raw, stringify!($t)
                )))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(raw).map_err(|_| Error::msg(format!(
                    "{} out of range for {}", raw, stringify!($t)
                )))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("single-char string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", v)),
        }
    }
}

// ---------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array().ok_or_else(|| Error::expected("array", v))?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        if items.len() != N {
            return Err(Error::msg(format!("expected array of length {N}, got {}", items.len())));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if a.len() != LEN {
                    return Err(Error::msg(format!("expected {}-tuple, got {} items", LEN, a.len())));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys must render to (and parse from) JSON object keys.
pub trait MapKey: Sized + Ord {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::msg(format!("bad {} map key: {s:?}", stringify!($t))))
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn map_to_value<'a, K: MapKey + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    let mut pairs: Vec<(String, Value)> =
        entries.map(|(k, v)| (k.to_key(), v.to_value())).collect();
    // Sort for deterministic output independent of hasher state.
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Object(pairs)
}

impl<K: MapKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        let t = (1u32, 2.5f64);
        assert_eq!(<(u32, f64)>::from_value(&t.to_value()).unwrap(), t);
        let a = [5u64; 9];
        assert_eq!(<[u64; 9]>::from_value(&a.to_value()).unwrap(), a);
    }

    #[test]
    fn maps_sort_keys() {
        let mut m = HashMap::new();
        m.insert(10u64, 1u64);
        m.insert(2u64, 2u64);
        let v = m.to_value();
        let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["10", "2"]); // lexicographic, but deterministic
        assert_eq!(HashMap::<u64, u64>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn u64_precision_preserved() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }
}
