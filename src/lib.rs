//! # dsindex — distributed data-stream indexing over content-based routing
//!
//! A from-scratch Rust reproduction of *"Distributed Data Streams Indexing
//! using Content-Based Routing Paradigm"* (Bulut, Vitenberg & Singh,
//! IPDPS 2005): a middleware that turns a Chord-style DHT into a distributed
//! index over live data streams, answering continuous **similarity** and
//! **inner-product** queries without flooding.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`dsp`] | `dsi-dsp` | DFT/FFT, sliding DFT (Eq. 5), normalization, feature vectors, MBRs |
//! | [`chord`] | `dsi-chord` | SHA-1, identifier circle, finger tables, lookup, churn, range multicast |
//! | [`simnet`] | `dsi-simnet` | discrete-event engine, 50 ms/hop cost model, metrics |
//! | [`streamgen`] | `dsi-streamgen` | random walks, correlated/Zipf skew, synthetic stocks, host-load traces, query workloads |
//! | [`core`] | `dsi-core` | the middleware: key mapping (Eq. 6), MBR batching, query handling, the §V experiment driver |
//! | [`hierarchy`] | `dsi-hierarchy` | §VI extensions: leader hierarchy, variable selectivity, adaptive precision |
//!
//! ## Quickstart
//!
//! ```
//! use dsindex::prelude::*;
//!
//! // A 16-data-center system, one stream, defaults from the paper.
//! let mut cfg = ClusterConfig::new(16);
//! cfg.workload.window_len = 16;
//! cfg.kind = SimilarityKind::Subsequence;
//! let mut cluster = Cluster::new(cfg);
//! let sid = cluster.register_stream("temperatures", 0);
//!
//! // Feed values; summaries are content-routed automatically.
//! for i in 0..48 {
//!     let v = 20.0 + (i as f64 * 0.4).sin();
//!     cluster.post_value(sid, v, SimTime::from_ms(i * 200));
//! }
//!
//! // Ask: which streams currently look like this pattern?
//! let pattern: Vec<f64> = (0..16).map(|i| 20.0 + ((i + 32) as f64 * 0.4).sin()).collect();
//! let qid = cluster.post_similarity_query(3, pattern, 0.2, 60_000, SimTime::from_secs(10));
//! cluster.notify_all(SimTime::from_secs(12));
//! assert!(cluster.notifications(qid).iter().any(|n| n.stream == sid));
//! ```

pub use dsi_chord as chord;
pub use dsi_core as core;
pub use dsi_dsp as dsp;
pub use dsi_hierarchy as hierarchy;
pub use dsi_simnet as simnet;
pub use dsi_streamgen as streamgen;
pub use dsi_trace as trace;

/// The most common imports for applications.
pub mod prelude {
    pub use dsi_chord::{
        BuildRouter, ChordId, ContentRouter, IdSpace, PastryNet, RangeStrategy, Ring,
    };
    pub use dsi_core::{
        gini, run_experiment, AggregateKind, AggregateNotification, AggregateSpec, AggregateValue,
        AlertCondition, Cluster, ClusterConfig, ErrorBound, ExperimentConfig, InnerProductPush,
        InnerProductQuery, LoadBalanceReport, MatchNotification, QueryId, ReweightConfig,
        SimilarityKind, SimilarityPush, SimilarityQuery, SketchDims, StreamId, StreamIndex,
        SystemReport,
    };
    pub use dsi_dsp::{FeatureExtractor, FeatureVector, Mbr, Normalization};
    pub use dsi_hierarchy::{AdaptivePrecision, HierarchicalIndex, Hierarchy};
    pub use dsi_simnet::SimTime;
    pub use dsi_streamgen::{
        CorrelatedWalks, HostLoad, Market, MarketConfig, QueryWorkload, RandomWalk, TenantLedger,
        TenantPolicy, WorkloadConfig, ZipfSampler,
    };
}
